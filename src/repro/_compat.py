"""Deprecation plumbing for the public-surface alias window.

The ``repro.api`` consolidation (see docs/api.md, "Migration guide")
settled one canonical spelling for each previously-inconsistent
keyword; the old spellings keep working for one release and emit
:class:`DeprecationWarning` through the helpers here, so every alias
warns with the same wording and is trivially greppable for removal.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Type

#: sentinel distinguishing "argument not passed" from an explicit None.
MISSING: Any = object()


def warn_deprecated(func: str, old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the standard one-release deprecation warning."""
    warnings.warn(
        f"{func}: {old} is deprecated and will be removed in the next "
        f"release; use {new} instead",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )


def resolve_alias(
    func: str,
    canonical: str,
    canonical_value: Any,
    deprecated: str,
    deprecated_value: Any,
) -> Any:
    """Merge a deprecated keyword alias into its canonical parameter.

    Both parameters use :data:`MISSING` as their declared default.
    Passing the alias warns; passing both is an error; passing neither
    raises the ``TypeError`` the canonical-only signature would have.
    """
    if deprecated_value is MISSING:
        if canonical_value is MISSING:
            raise TypeError(
                f"{func}() missing required argument: {canonical!r}"
            )
        return canonical_value
    warn_deprecated(
        f"{func}()", f"the {deprecated!r} keyword", f"{canonical!r}"
    )
    if canonical_value is not MISSING:
        raise TypeError(
            f"{func}() got both {canonical!r} and its deprecated "
            f"alias {deprecated!r}"
        )
    return deprecated_value


def canonical_index_name(value: Any, func: str) -> str:
    """Normalize an ``index=`` selector to its canonical registry name.

    Canonical is the lower-case unhyphenated spelling (``"pmtree"``);
    legacy spellings such as ``"PM-Tree"`` or ``"vp-tree"`` keep
    working for one release with a :class:`DeprecationWarning`.
    Whether the *normalized* name is actually registered is the
    registry's business (:func:`repro.index.get_backend` raises a
    typed :class:`repro.index.UnknownIndexError` listing what is).
    """
    if not isinstance(value, str):
        raise TypeError(
            f"{func}(): index must be a backend name string, got "
            f"{type(value).__name__}"
        )
    normalized = value.lower().replace("-", "").replace("_", "")
    if normalized != value:
        warn_deprecated(
            f"{func}()",
            f"the index spelling {value!r}",
            f"the canonical name {normalized!r}",
        )
    return normalized


def merge_index_options(
    func: str, index_options: Any, **deprecated: Any
) -> Dict[str, Any]:
    """Fold deprecated per-backend build kwargs into ``index_options``.

    The engine-construction keywords that were really backend build
    knobs (``node_capacity``, ``split_policy``, ``bulk_load``) moved
    into the ``index_options`` dict when backends became pluggable.
    Each deprecated keyword uses :data:`MISSING` as its declared
    default: passing it warns and merges; passing the same key both
    ways is a ``TypeError``.
    """
    options = dict(index_options) if index_options else {}
    for key, value in deprecated.items():
        if value is MISSING:
            continue
        warn_deprecated(
            f"{func}()",
            f"the {key!r} keyword",
            f"index_options={{{key!r}: ...}}",
        )
        if key in options:
            raise TypeError(
                f"{func}() got index_options[{key!r}] and its "
                f"deprecated keyword alias {key!r}"
            )
        options[key] = value
    return options


def canonical_algorithm(
    value: Any, registry: Dict[str, Type], func: str
) -> str:
    """Normalize an algorithm selector to its canonical registry name.

    Canonical is the lower-case string key (``"pba2"``); passing the
    algorithm *class* still works for one release with a
    :class:`DeprecationWarning`.
    """
    if isinstance(value, str):
        lowered = value.lower()
        if lowered not in registry:
            raise ValueError(
                f"{func}(): unknown algorithm {value!r}; choose from "
                f"{sorted(registry)}"
            )
        return lowered
    if isinstance(value, type):
        for name, cls in registry.items():
            if cls is value:
                warn_deprecated(
                    f"{func}()",
                    f"passing the algorithm class {value.__name__}",
                    f"the registry name {name!r}",
                )
                return name
    raise ValueError(
        f"{func}(): unknown algorithm {value!r}; choose from "
        f"{sorted(registry)}"
    )
