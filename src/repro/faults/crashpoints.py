"""Named crash points: deterministic process-death injection.

`repro.faults` (PR 2) can corrupt a page or time out an RPC, but the
fault a durable system sees most often is the one it cannot catch:
the process dies mid-write.  This module makes that fault *nameable*
and *schedulable*: the durability code threads ``crashpoint("...")``
calls through every write path (WAL appends, commit records,
checkpoint rename/truncate, standing-query registration), and a test
installs a :class:`CrashPlan` selecting one site and one hit count.

Two firing modes:

* ``mode="kill"`` — ``SIGKILL`` the current process.  Used by the
  subprocess harness (:mod:`repro.recovery.harness`): the worker
  really dies, nothing gets a chance to flush, and the parent then
  verifies recovery from whatever reached the disk.
* ``mode="raise"`` — raise :class:`SimulatedCrash`.  Used by the
  in-process property tests (hypothesis explores interleavings far too
  many to fork for).  ``SimulatedCrash`` derives from
  :class:`BaseException` so no ``except Exception`` retry/cleanup
  handler on the write path can accidentally swallow a "crash".

With no plan installed (the default, and always in production) every
``crashpoint()`` call is a single attribute test — the hot path pays
one ``is None`` check.

The registry :data:`CRASH_POINTS` is the catalog the sweep harness
iterates: *every* registered site must be reachable by the harness
workload and recover to a verified state (``tests/test_recovery_crash``).
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: every named crash site threaded through the write paths, in rough
#: write-path order.  Adding a site here without wiring a
#: ``crashpoint()`` call (or vice versa) fails the sweep tests.
CRASH_POINTS: Tuple[str, ...] = (
    # storage: fired before a WAL-captured page mutation is applied.
    "storage.page.pre_mutate",
    # WAL batch lifecycle: before the OS write, mid-write (torn frame),
    # either side of fsync.
    "wal.append.pre_write",
    "wal.append.torn_write",
    "wal.append.pre_fsync",
    "wal.append.post_fsync",
    # engine mutations: either side of the commit record.
    "engine.insert.pre_commit",
    "engine.insert.post_commit",
    "engine.delete.pre_commit",
    "engine.delete.post_commit",
    # standing-query registration (streaming/service layer).
    "streaming.register.pre_commit",
    # checkpoint lifecycle: before the temp write, before/after the
    # atomic rename, after the WAL truncate.
    "checkpoint.pre_write",
    "checkpoint.pre_rename",
    "checkpoint.post_rename",
    "checkpoint.post_truncate",
)

_REGISTERED = frozenset(CRASH_POINTS)


class SimulatedCrash(BaseException):
    """In-process stand-in for SIGKILL (``mode="raise"`` plans).

    Deliberately a :class:`BaseException`: the write paths' retry loops
    and cleanup handlers catch :class:`Exception`, and a crash must not
    be absorbable by any of them — exactly like the real signal.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"simulated crash at {site}")
        self.site = site


@dataclass
class CrashPlan:
    """One scheduled crash: die at the ``hit``-th arrival at ``site``."""

    site: str
    hit: int = 1
    mode: str = "kill"
    #: arrivals at ``site`` so far (mutated by :func:`crashpoint`).
    count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.site not in _REGISTERED:
            raise ValueError(
                f"unknown crash point {self.site!r}; registered: "
                f"{sorted(_REGISTERED)}"
            )
        if self.hit < 1:
            raise ValueError("hit must be >= 1")
        if self.mode not in ("kill", "raise"):
            raise ValueError("mode must be 'kill' or 'raise'")


#: the installed plan; ``None`` keeps every crashpoint() a no-op.
_PLAN: Optional[CrashPlan] = None


def install_plan(plan: CrashPlan) -> None:
    """Arm one crash plan (replacing any previous one)."""
    global _PLAN
    plan.count = 0
    _PLAN = plan


def clear_plan() -> None:
    """Disarm crash injection (idempotent)."""
    global _PLAN
    _PLAN = None


def active_plan() -> Optional[CrashPlan]:
    """The armed plan, or None."""
    return _PLAN


def fire(site: str) -> None:
    """Execute the armed plan's death at ``site`` (never returns)."""
    plan = _PLAN
    if plan is None:  # pragma: no cover - defensive
        return
    if plan.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        # the signal is not deliverable synchronously in every runtime;
        # never fall through to "survived the crash".
        signal.pause()  # pragma: no cover
    raise SimulatedCrash(site)


def crashpoint(site: str) -> None:
    """Die here if the armed plan says so; free when no plan is armed."""
    plan = _PLAN
    if plan is None or plan.site != site:
        return
    plan.count += 1
    if plan.count >= plan.hit:
        fire(site)


def crashpoint_due(site: str) -> bool:
    """Would :func:`crashpoint` fire here?  (Does *not* fire.)

    For sites that need work *between* the decision and the death —
    the torn-write site writes a partial WAL frame first, then calls
    :func:`fire`.  Advances the hit counter exactly like
    :func:`crashpoint`.
    """
    plan = _PLAN
    if plan is None or plan.site != site:
        return False
    plan.count += 1
    return plan.count >= plan.hit


def sample_crash_points(seed: int, count: int) -> List[str]:
    """A deterministic sample of registered sites (CI smoke sweeps)."""
    if count >= len(CRASH_POINTS):
        return list(CRASH_POINTS)
    return random.Random(seed).sample(list(CRASH_POINTS), count)
