"""Seeded, reproducible fault injection.

:class:`ChaosConfig` is a frozen bundle of per-layer fault
probabilities plus the recovery tunables (retry policy, breaker
thresholds); :class:`FaultInjector` turns one config into decisions.
Every decision is drawn from a per-layer :class:`random.Random` derived
from ``seed``, and every injected fault (and every retry taken in
response) is appended to an in-order log — so two runs of the same
workload with the same seed produce **byte-identical** fault sequences,
retry counts and therefore results.  That reproducibility is the whole
point: a chaos failure found in CI replays locally from its seed.

Layer streams are independent: the storage stream advances only on
physical page reads, the RPC stream only on site calls, so adding
faults to one layer never perturbs the sequence seen by another.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.breaker import CircuitBreaker
from repro.faults.checksum import CORRUPTION_MASK
from repro.faults.crashpoints import CrashPlan, install_plan
from repro.faults.errors import (
    PermanentPageError,
    RpcTimeout,
    SiteUnavailable,
    TransientPageError,
)
from repro.faults.retry import RetryPolicy
from repro.obs import trace


@dataclass(frozen=True)
class ChaosConfig:
    """Fault probabilities and recovery tunables for one chaos run.

    All probabilities are per-operation (per physical page read, per
    site call) and default to 0 — a default config attached to a system
    changes nothing except enabling page checksums.
    """

    seed: int = 0

    #: the named profile this config came from (``ChaosConfig.profile``
    #: stamps it; hand-built configs stay ``None``).  Purely
    #: informational — surfaced by metrics snapshots so a scrape is
    #: attributable to the fault mix that produced it.
    profile_name: Optional[str] = None

    # storage layer (per physical page read)
    read_transient_p: float = 0.0
    read_permanent_p: float = 0.0
    corrupt_p: float = 0.0
    storage_latency_p: float = 0.0
    storage_latency_seconds: float = 0.002

    # rpc layer (per site call)
    rpc_timeout_p: float = 0.0
    rpc_fail_p: float = 0.0
    rpc_latency_p: float = 0.0
    rpc_latency_seconds: float = 0.002

    # retry policy applied to transient faults in both layers
    retry_max_attempts: int = 4
    retry_base_delay: float = 0.001
    retry_max_delay: float = 0.050
    retry_jitter: float = 0.5
    #: cap on cumulative backoff per retry loop (None = the curve's
    #: own jitter-free sum; see RetryPolicy.worst_case_total).
    retry_max_total_delay: Optional[float] = None

    # crash injection (repro.faults.crashpoints): die at the
    # ``crash_hit``-th arrival at the named site.  ``None`` disables.
    crash_point: Optional[str] = None
    crash_hit: int = 1
    crash_mode: str = "kill"

    # per-site circuit breaker
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 0.050

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_p"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"{f.name} must be a probability in [0, 1], "
                        f"got {value}"
                    )

    @property
    def retry_policy(self) -> RetryPolicy:
        """The retry loop shape this config prescribes."""
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
            max_total_delay=self.retry_max_total_delay,
        )

    @property
    def crash_plan(self) -> Optional["CrashPlan"]:
        """The crash schedule this config prescribes (None = none)."""
        if self.crash_point is None:
            return None
        return CrashPlan(
            site=self.crash_point,
            hit=self.crash_hit,
            mode=self.crash_mode,
        )

    @classmethod
    def profile(cls, name: str, seed: int = 0) -> "ChaosConfig":
        """A named fault profile (see :data:`PROFILES`)."""
        try:
            overrides = PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; choose from "
                f"{sorted(PROFILES)}"
            ) from None
        return replace(cls(seed=seed, profile_name=name), **overrides)


#: named fault profiles for the load generator / chaos harness.  Keys
#: are CLI-friendly names; values are ChaosConfig field overrides.
PROFILES: Dict[str, Dict[str, Any]] = {
    # no faults at all: the control group every chaos run compares to.
    "none": {},
    # the tier-1 smoke profile: rare transient faults everywhere, all
    # absorbed by retries — results must equal the fault-free run.
    "low": {
        "read_transient_p": 0.01,
        "rpc_timeout_p": 0.01,
    },
    # a disk with frequent transient read errors and occasional
    # latency spikes: retries absorb everything, throughput drops.
    "flaky-disk": {
        "read_transient_p": 0.10,
        "storage_latency_p": 0.05,
        "storage_latency_seconds": 0.001,
    },
    # a network that times out and drops calls: breakers trip, the
    # coordinator degrades.
    "flaky-network": {
        "rpc_timeout_p": 0.10,
        "rpc_fail_p": 0.05,
        "rpc_latency_p": 0.05,
        "rpc_latency_seconds": 0.001,
    },
    # rare hard failures: permanent read errors and corrupted pages
    # surface as typed fatal errors callers must handle.
    "bad-sectors": {
        "read_transient_p": 0.02,
        "read_permanent_p": 0.005,
        "corrupt_p": 0.005,
    },
}


@dataclass
class FaultRecord:
    """One injected fault / retry, in injection order."""

    layer: str
    kind: str
    target: str

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.layer, self.kind, self.target)


class FaultInjector:
    """Deterministic fault source shared by every layer of one system.

    One injector is attached to the storage managers, the RPC shims and
    (through them) the service; it owns the seeded per-layer RNG
    streams, the retry policy, the breaker factory, the sleep hook and
    the fault log.  ``sleep`` is injectable so tests can run injected
    latency and backoff without real wall-clock delay.
    """

    def __init__(
        self,
        config: Optional[ChaosConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ChaosConfig()
        self._sleep = sleep
        self.clock = clock
        plan = self.config.crash_plan
        if plan is not None:
            # arming is process-global: a crash is a property of the
            # process, not of one storage manager.
            install_plan(plan)
        root = random.Random(self.config.seed)
        self._storage_rng = random.Random(root.randrange(1 << 62))
        self._rpc_rng = random.Random(root.randrange(1 << 62))
        self._retry_rng = random.Random(root.randrange(1 << 62))
        self._lock = threading.Lock()
        self._log: List[FaultRecord] = []
        self._counters: Dict[str, int] = {}
        self._breakers: List[CircuitBreaker] = []

    # ------------------------------------------------------------------
    # shared recovery machinery
    # ------------------------------------------------------------------
    @property
    def retry_policy(self) -> RetryPolicy:
        return self.config.retry_policy

    @property
    def retry_rng(self) -> random.Random:
        """The jitter stream for retry backoff (seed-derived)."""
        return self._retry_rng

    def make_breaker(self, name: str) -> CircuitBreaker:
        """A circuit breaker with this config's thresholds and clock.

        Breakers made here are remembered so :meth:`snapshot` can
        expose every breaker's state in one place (the service's
        unified metrics document).
        """
        breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            clock=self.clock,
            name=name,
        )
        with self._lock:
            self._breakers.append(breaker)
        return breaker

    def sleep(self, seconds: float) -> None:
        """Enact injected latency / backoff via the configured hook."""
        if seconds > 0:
            self._sleep(seconds)

    def note_retry(self, layer: str, target: str) -> None:
        """Record one retry taken in response to a transient fault."""
        self._record(layer, "retry", target)

    def note_checksum_failure(self, disk: str, page_id: int) -> None:
        """Record one detected page-checksum mismatch."""
        self._record("storage", "checksum_failure", f"{disk}:{page_id}")

    def _record(self, layer: str, kind: str, target: str) -> None:
        with self._lock:
            self._log.append(FaultRecord(layer, kind, target))
            key = f"{layer}.{kind}"
            self._counters[key] = self._counters.get(key, 0) + 1
        # every fault-framework event funnels through here, so this one
        # call makes faults visible inside query traces too.
        trace.event(
            f"fault.{layer}.{kind}", category="fault", args={"target": target}
        )

    # ------------------------------------------------------------------
    # storage decisions (called by PageManager on physical reads)
    # ------------------------------------------------------------------
    def on_physical_read(self, disk: str, page) -> None:
        """Maybe delay, corrupt or fail one physical page read.

        All four decisions are drawn on every read so the consumed RNG
        sequence — and hence everything downstream — depends only on
        the read sequence, not on which faults happened to fire.
        Corruption tampers the stored checksum *before* any raise, so
        a transiently-failed read retried onto a corrupted page still
        detects the corruption.
        """
        cfg = self.config
        with self._lock:
            rng = self._storage_rng
            latency = rng.random() < cfg.storage_latency_p
            transient = rng.random() < cfg.read_transient_p
            permanent = rng.random() < cfg.read_permanent_p
            corrupt = rng.random() < cfg.corrupt_p
        target = f"{disk}:{page.page_id}"
        if latency:
            self._record("storage", "latency", target)
            self.sleep(cfg.storage_latency_seconds)
        if corrupt and page.crc is not None:
            self._record("storage", "corrupt", target)
            page.crc ^= CORRUPTION_MASK
        if permanent:
            self._record("storage", "read_permanent", target)
            raise PermanentPageError(disk, page.page_id)
        if transient:
            self._record("storage", "read_transient", target)
            raise TransientPageError(disk, page.page_id)

    # ------------------------------------------------------------------
    # rpc decisions (called by SiteClient per call attempt)
    # ------------------------------------------------------------------
    def on_rpc(self, site_id: int, method: str) -> None:
        """Maybe delay or fail one site call attempt."""
        cfg = self.config
        with self._lock:
            rng = self._rpc_rng
            latency = rng.random() < cfg.rpc_latency_p
            timeout = rng.random() < cfg.rpc_timeout_p
            fail = rng.random() < cfg.rpc_fail_p
        target = f"site{site_id}.{method}"
        if latency:
            self._record("rpc", "latency", target)
            self.sleep(cfg.rpc_latency_seconds)
        if timeout:
            self._record("rpc", "timeout", target)
            raise RpcTimeout(site_id, method)
        if fail:
            self._record("rpc", "unavailable", target)
            raise SiteUnavailable(site_id, method)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def fault_log(self) -> Tuple[Tuple[str, str, str], ...]:
        """The in-order (layer, kind, target) log of every event."""
        with self._lock:
            return tuple(record.as_tuple() for record in self._log)

    def counters(self) -> Dict[str, int]:
        """Event counts keyed ``"layer.kind"``."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """Config echo, counters and breaker states, JSON-serialisable."""
        with self._lock:
            counters = dict(self._counters)
            events = len(self._log)
            breakers = list(self._breakers)
        return {
            "seed": self.config.seed,
            "events": events,
            "counters": counters,
            "breakers": {b.name: b.snapshot() for b in breakers},
        }
