"""Typed failures raised by the fault-injection framework.

Every fault the framework can inject (or detect) is a subclass of
:class:`FaultError` carrying two classification attributes:

* ``layer`` — which subsystem produced it (``"storage"`` or ``"rpc"``),
* ``retryable`` — whether trying again can plausibly succeed.  The
  retry loops in :mod:`repro.faults.retry` and the serving layer's
  error mapping (`repro.service`) both branch on this flag alone, so
  adding a new fault kind never requires touching the recovery code.

The hierarchy is deliberately *separate* from
:class:`~repro.storage.pages.PageError`: ``PageError`` means the caller
used the API wrong (double free, unknown id) and must never be retried,
while a ``FaultError`` means the simulated hardware misbehaved.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class of every injected or detected fault."""

    #: subsystem that produced the fault ("storage", "rpc", ...).
    layer = "fault"
    #: whether retrying the failed operation can plausibly succeed.
    retryable = False


# ----------------------------------------------------------------------
# storage layer
# ----------------------------------------------------------------------
class StorageFault(FaultError):
    """Base class of simulated-disk faults."""

    layer = "storage"


class TransientPageError(StorageFault):
    """A page read failed transiently (e.g. a timeout); retry it."""

    retryable = True

    def __init__(self, disk: str, page_id: int) -> None:
        super().__init__(
            f"transient read fault on page {page_id} of {disk}"
        )
        self.disk = disk
        self.page_id = page_id


class PermanentPageError(StorageFault):
    """A page read failed permanently (e.g. a dead sector)."""

    def __init__(self, disk: str, page_id: int) -> None:
        super().__init__(
            f"permanent read fault on page {page_id} of {disk}"
        )
        self.disk = disk
        self.page_id = page_id


class StorageCorruption(StorageFault):
    """A page's CRC32 checksum did not match its payload on read.

    Never retryable: the corruption is on the (simulated) disk, so a
    re-read returns the same corrupted bytes.
    """

    def __init__(self, disk: str, page_id: int) -> None:
        super().__init__(
            f"checksum mismatch reading page {page_id} of {disk}"
        )
        self.disk = disk
        self.page_id = page_id


# ----------------------------------------------------------------------
# rpc / distributed layer
# ----------------------------------------------------------------------
class RpcFault(FaultError):
    """Base class of simulated site-communication faults."""

    layer = "rpc"

    def __init__(self, site_id: int, method: str, reason: str) -> None:
        super().__init__(
            f"{reason} calling {method}() on site {site_id}"
        )
        self.site_id = site_id
        self.method = method


class RpcTimeout(RpcFault):
    """A site call exceeded its (simulated) timeout."""

    retryable = True

    def __init__(self, site_id: int, method: str) -> None:
        super().__init__(site_id, method, "timeout")


class SiteUnavailable(RpcFault):
    """A site call failed outright (site down, link broken)."""

    retryable = True

    def __init__(self, site_id: int, method: str) -> None:
        super().__init__(site_id, method, "site unavailable")


class CircuitOpen(RpcFault):
    """The per-site circuit breaker rejected the call locally.

    Retryable in the back-off sense: the breaker will admit a probe
    once its reset timeout elapses — but the *current* call was never
    sent, so the coordinator degrades instead of waiting.
    """

    retryable = True

    def __init__(self, site_id: int, method: str) -> None:
        super().__init__(site_id, method, "circuit breaker open")
