"""repro.faults — deterministic fault injection and the machinery
that survives it.

The paper's cost model (and the PR-1 serving layer) assume every
component succeeds; this subsystem makes failure a first-class,
*reproducible* input instead:

* **typed faults** (``errors.py``) — transient vs permanent page
  faults, checksum :class:`StorageCorruption`, RPC timeouts,
  :class:`CircuitOpen` — each tagged ``layer`` and ``retryable``;
* **seeded injection** (``chaos.py``) — :class:`ChaosConfig` bundles
  per-layer probabilities, :class:`FaultInjector` draws every decision
  from per-layer seeded RNG streams and logs it, so a chaos run replays
  byte-identically from its seed;
* **retries** (``retry.py``) — capped exponential backoff with
  deterministic jitter, applied to transient storage faults by
  :class:`~repro.storage.buffer.LRUBuffer` and to site calls by
  :class:`~repro.distributed.rpc.SiteClient`;
* **circuit breakers** (``breaker.py``) — per-site closed → open →
  half-open breakers that convert a dead site into an immediate local
  rejection, letting the coordinator answer in degraded mode;
* **checksums** (``checksum.py``) — CRC32 over each page's payload,
  stamped on write and verified on physical read whenever an injector
  is attached.

See ``docs/robustness.md`` for the fault model and the degraded-mode
coverage contract.
"""

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.chaos import (
    PROFILES,
    ChaosConfig,
    FaultInjector,
    FaultRecord,
)
from repro.faults.checksum import payload_checksum
from repro.faults.crashpoints import (
    CRASH_POINTS,
    CrashPlan,
    SimulatedCrash,
    clear_plan,
    crashpoint,
    install_plan,
    sample_crash_points,
)
from repro.faults.errors import (
    CircuitOpen,
    FaultError,
    PermanentPageError,
    RpcFault,
    RpcTimeout,
    SiteUnavailable,
    StorageCorruption,
    StorageFault,
    TransientPageError,
)
from repro.faults.retry import RetryPolicy, call_with_retry

__all__ = [
    "CLOSED",
    "CRASH_POINTS",
    "HALF_OPEN",
    "OPEN",
    "PROFILES",
    "ChaosConfig",
    "CircuitBreaker",
    "CircuitOpen",
    "CrashPlan",
    "FaultError",
    "FaultInjector",
    "FaultRecord",
    "PermanentPageError",
    "RetryPolicy",
    "RpcFault",
    "RpcTimeout",
    "SimulatedCrash",
    "SiteUnavailable",
    "StorageCorruption",
    "StorageFault",
    "TransientPageError",
    "call_with_retry",
    "clear_plan",
    "crashpoint",
    "install_plan",
    "payload_checksum",
    "sample_crash_points",
]
