"""CRC32 page checksums.

A real storage engine checksums each 4 KB page so silent corruption is
detected on read instead of propagating into query answers.  Pages here
carry live Python payloads rather than bytes, so the checksum is taken
over a canonical serialization: :func:`pickle.dumps` when the payload
is picklable (all node types and record blocks are plain dataclasses /
lists / numpy arrays), falling back to ``repr`` otherwise.  Within one
process either encoding is stable for an unmutated payload, which is
exactly the contract a read-verify needs.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any

#: XOR mask the fault injector applies to a stored checksum to model
#: on-disk corruption (any non-zero mask guarantees a mismatch).
CORRUPTION_MASK = 0x5A5A5A5A


def payload_checksum(payload: Any) -> int:
    """CRC32 of the payload's canonical serialization (32-bit int)."""
    try:
        data = pickle.dumps(payload, protocol=4)
    except Exception:
        data = repr(payload).encode("utf-8", "replace")
    return zlib.crc32(data) & 0xFFFFFFFF
