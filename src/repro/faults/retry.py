"""Retries with capped exponential backoff and deterministic jitter.

The standard recovery loop for transient faults: attempt, back off
``base_delay * multiplier**attempt`` (capped at ``max_delay``), add
jitter so concurrent retriers do not synchronize, try again up to
``max_attempts`` times, then surface the last error.

Jitter is drawn from a caller-supplied :class:`random.Random`, *not*
the global RNG — with a seeded generator the exact backoff sequence
(and therefore any latency-sensitive downstream behaviour) replays
byte-identically, which is what makes chaos runs debuggable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.faults.errors import FaultError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of one retry loop (attempt count and backoff curve)."""

    max_attempts: int = 4
    base_delay: float = 0.001
    max_delay: float = 0.050
    multiplier: float = 2.0
    #: jitter fraction: the delay is scaled by a uniform draw from
    #: ``[1 - jitter, 1]`` (so the cap is never exceeded).
    jitter: float = 0.5
    #: hard bound on the *cumulative* backoff slept by one retry loop.
    #: ``None`` derives the bound from the curve itself
    #: (:meth:`worst_case_total`), so even a policy with many attempts
    #: or a pathological multiplier cannot stall a caller beyond the
    #: sum its own shape advertises.  Set explicitly to trade recovery
    #: probability for tail latency.
    max_total_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_total_delay is not None and self.max_total_delay < 0:
            raise ValueError("max_total_delay must be >= 0")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based), in seconds."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** attempt
        )
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw

    def worst_case_total(self) -> float:
        """Upper bound on total backoff one loop can sleep.

        The jitter-free sum of every possible backoff (jitter only
        shrinks delays), clipped by ``max_total_delay`` when set.
        Pinned for the default policy by
        ``tests/test_faults_retry.py`` — the regression guard that a
        retry storm can never stall a write path longer than this.
        """
        total = sum(
            min(self.max_delay, self.base_delay * self.multiplier ** a)
            for a in range(self.max_attempts - 1)
        )
        if self.max_total_delay is not None:
            total = min(total, self.max_total_delay)
        return total


def default_retryable(exc: BaseException) -> bool:
    """The framework's classification: retry exactly transient faults."""
    return isinstance(exc, FaultError) and exc.retryable


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    rng: random.Random,
    sleep: Callable[[float], None],
    retryable: Callable[[BaseException], bool] = default_retryable,
    on_retry: Optional[Callable[[BaseException, int, float], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or retries are exhausted.

    ``on_retry(exc, attempt, delay)`` fires before each backoff sleep
    (used by the fault injector to count and log retries).  The final
    failure propagates unchanged so callers see the typed fault.

    Cumulative backoff is bounded by ``policy.worst_case_total()``:
    each sleep is clipped to the budget remaining, so no retry loop —
    whatever its attempt count or multiplier — can stall its caller
    longer than the policy's advertised total.
    """
    attempt = 0
    budget = policy.worst_case_total()
    slept = 0.0
    while True:
        try:
            return fn()
        except Exception as exc:
            if not retryable(exc) or attempt >= policy.max_attempts - 1:
                raise
            delay = min(policy.backoff(attempt, rng), budget - slept)
            if delay < 0:
                delay = 0.0
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            if delay > 0:
                sleep(delay)
                slept += delay
            attempt += 1
