"""Retries with capped exponential backoff and deterministic jitter.

The standard recovery loop for transient faults: attempt, back off
``base_delay * multiplier**attempt`` (capped at ``max_delay``), add
jitter so concurrent retriers do not synchronize, try again up to
``max_attempts`` times, then surface the last error.

Jitter is drawn from a caller-supplied :class:`random.Random`, *not*
the global RNG — with a seeded generator the exact backoff sequence
(and therefore any latency-sensitive downstream behaviour) replays
byte-identically, which is what makes chaos runs debuggable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.faults.errors import FaultError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of one retry loop (attempt count and backoff curve)."""

    max_attempts: int = 4
    base_delay: float = 0.001
    max_delay: float = 0.050
    multiplier: float = 2.0
    #: jitter fraction: the delay is scaled by a uniform draw from
    #: ``[1 - jitter, 1]`` (so the cap is never exceeded).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based), in seconds."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** attempt
        )
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


def default_retryable(exc: BaseException) -> bool:
    """The framework's classification: retry exactly transient faults."""
    return isinstance(exc, FaultError) and exc.retryable


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    rng: random.Random,
    sleep: Callable[[float], None],
    retryable: Callable[[BaseException], bool] = default_retryable,
    on_retry: Optional[Callable[[BaseException, int, float], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or retries are exhausted.

    ``on_retry(exc, attempt, delay)`` fires before each backoff sleep
    (used by the fault injector to count and log retries).  The final
    failure propagates unchanged so callers see the typed fault.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as exc:
            if not retryable(exc) or attempt >= policy.max_attempts - 1:
                raise
            delay = policy.backoff(attempt, rng)
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            if delay > 0:
                sleep(delay)
            attempt += 1
