"""Per-dependency circuit breaker (closed → open → half-open).

Retries handle *blips*; a breaker handles a dependency that is *down*.
After ``failure_threshold`` consecutive failures the breaker opens and
every call is rejected locally with
:class:`~repro.faults.errors.CircuitOpen` — no timeout is paid, which
is what lets the distributed coordinator answer in degraded mode at
full speed instead of stalling on a dead site every round.  After
``reset_timeout`` seconds one probe call is admitted (half-open): if it
succeeds the breaker closes, otherwise it re-opens for another window.

The clock is injectable so tests (and seeded chaos runs) can drive the
state machine deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: state names (plain strings: they appear in snapshots / logs).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.050,
        clock: Callable[[], float] = time.monotonic,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self.name = name
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        # lifetime counters for the metrics snapshot.
        self.opens = 0
        self.rejections = 0
        self.probes = 0

    @property
    def state(self) -> str:
        """Current state, resolving an elapsed open window to half-open."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self.clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN

    def allow(self) -> bool:
        """Whether the next call may proceed (counts rejections).

        In half-open state only one probe is admitted at a time; it is
        accounted via ``probes`` and decided by the next
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                self.probes += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """A call (or probe) succeeded: close and reset the count."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A call failed: count it; threshold (or a failed probe) opens."""
        with self._lock:
            self._consecutive_failures += 1
            failed_probe = self._state == HALF_OPEN
            if (
                failed_probe
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != OPEN:
                    self.opens += 1
                self._state = OPEN
                self._opened_at = self.clock()

    def force_open(self) -> None:
        """Trip the breaker manually (tests, operational kill switch)."""
        with self._lock:
            if self._state != OPEN:
                self.opens += 1
            self._state = OPEN
            self._opened_at = self.clock()
            self._consecutive_failures = self.failure_threshold

    def force_close(self) -> None:
        """Reset the breaker manually."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0

    def snapshot(self) -> dict:
        """State and lifetime counters as plain types."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "opens": self.opens,
                "rejections": self.rejections,
                "probes": self.probes,
            }
