"""Unit tests of single-flight request coalescing (thread semantics)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.coalesce import SingleFlight


class TestProtocol:
    def test_leader_then_follower(self):
        flight = SingleFlight()
        future, leader = flight.begin("key")
        assert leader
        follower_future, follower_leader = flight.begin("key")
        assert not follower_leader
        assert follower_future is future
        flight.finish("key", result=42)
        assert future.result(timeout=1) == 42
        assert flight.saved == 1 and flight.flights == 1

    def test_new_flight_after_landing(self):
        flight = SingleFlight()
        _, leader = flight.begin("key")
        flight.finish("key", result=1)
        _, leader_again = flight.begin("key")
        assert leader and leader_again
        assert flight.flights == 2
        flight.finish("key", result=2)
        assert flight.inflight == 0

    def test_distinct_keys_fly_separately(self):
        flight = SingleFlight()
        _, a = flight.begin("a")
        _, b = flight.begin("b")
        assert a and b
        assert flight.inflight == 2
        flight.finish("a", result=None)
        flight.finish("b", result=None)


class TestClose:
    def test_close_bars_new_joiners_before_completion(self):
        # the two-phase landing: after close() the key flies fresh even
        # though the old flight's future is not yet completed — this is
        # what lets the service bar joiners at its linearization point
        # (under the engine read lock) and deliver after the I/O stall.
        flight = SingleFlight()
        future, leader = flight.begin("key")
        assert leader
        closed = flight.close("key")
        assert closed is future
        assert flight.inflight == 0
        fresh_future, fresh_leader = flight.begin("key")
        assert fresh_leader, "a post-close request must start a new flight"
        assert fresh_future is not future
        # completing the old flight later still wakes its followers
        future.set_result("old answer")
        assert future.result(timeout=1) == "old answer"
        flight.finish("key", result="new answer")
        assert fresh_future.result(timeout=1) == "new answer"

    def test_follower_joined_before_close_still_served(self):
        flight = SingleFlight()
        future, _ = flight.begin("key")
        follower_future, follower_leader = flight.begin("key")
        assert not follower_leader
        flight.close("key")
        future.set_result(7)
        assert follower_future.result(timeout=1) == 7
        assert flight.saved == 1


class TestExecute:
    def test_concurrent_identical_calls_share_one_execution(self):
        flight = SingleFlight()
        executions = []
        barrier = threading.Barrier(4)
        results = []

        def work():
            executions.append(threading.get_ident())
            time.sleep(0.05)  # hold the flight open for the followers
            return "value"

        def caller():
            barrier.wait()
            results.append(flight.execute("key", work))

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(executions) == 1, "exactly one caller may execute"
        assert [value for value, _shared in results] == ["value"] * 4
        assert sum(shared for _value, shared in results) == 3
        assert flight.saved == 3

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        barrier = threading.Barrier(2)
        errors = []

        def exploding():
            time.sleep(0.05)
            raise RuntimeError("boom")

        def leader():
            barrier.wait()
            try:
                flight.execute("key", exploding)
            except RuntimeError as exc:
                errors.append(exc)

        def follower():
            barrier.wait()
            time.sleep(0.01)  # ensure the leader begins first
            try:
                flight.execute("key", lambda: "never runs")
            except RuntimeError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=leader),
            threading.Thread(target=follower),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(errors) == 2
        assert all(str(exc) == "boom" for exc in errors)
        # the failed flight is gone; the key flies fresh next time
        assert flight.execute("key", lambda: "recovered") == (
            "recovered",
            False,
        )

    def test_sequential_calls_never_share(self):
        flight = SingleFlight()
        first = flight.execute("key", lambda: 1)
        second = flight.execute("key", lambda: 2)
        assert first == (1, False)
        assert second == (2, False), "sequential calls each execute"


def test_snapshot_shape():
    flight = SingleFlight()
    flight.execute("key", lambda: None)
    snap = flight.snapshot()
    assert snap == {"flights": 1, "saved": 0, "inflight": 0}
