"""Typed fault surfacing through the query service."""

import asyncio

import pytest

from repro.faults.chaos import ChaosConfig
from repro.faults.errors import StorageCorruption, TransientPageError
from repro.service import (
    FatalFault,
    QueryService,
    Rejected,
    ServiceConfig,
    ServiceError,
    TransientFault,
)

from tests.conftest import make_engine

QUERIES = [0, 40, 80]


def make_service(chaos=None, **config_kwargs):
    engine = make_engine(n=120, dims=3, seed=31)
    service = QueryService(
        engine, ServiceConfig(workers=2, chaos=chaos, **config_kwargs)
    )
    if chaos is not None:
        # the build leaves pages resident; start cold so queries do
        # physical reads and actually meet the injected disk.
        engine.buffers.clear()
    return service


def certain_transient():
    return ChaosConfig(
        seed=5,
        read_transient_p=1.0,
        retry_base_delay=0.0,
        retry_max_delay=0.0,
    )


def certain_corruption():
    return ChaosConfig(seed=5, corrupt_p=1.0)


class TestFaultTaxonomy:
    def test_transient_fault_is_a_retryable_rejection(self):
        # 503 semantics: subclass of Rejected, so a client treats it
        # like overload — back off and retry.
        assert issubclass(TransientFault, Rejected)
        assert issubclass(FatalFault, ServiceError)
        assert not issubclass(FatalFault, Rejected)


class TestSyncPath:
    def test_exhausted_transient_surfaces_as_transient_fault(self):
        with make_service(chaos=certain_transient()) as service:
            with pytest.raises(TransientFault) as excinfo:
                service.query_sync(QUERIES, 3)
            assert isinstance(excinfo.value.__cause__, TransientPageError)

    def test_corruption_surfaces_as_fatal_fault(self):
        with make_service(chaos=certain_corruption()) as service:
            with pytest.raises(FatalFault) as excinfo:
                service.query_sync(QUERIES, 3)
            assert isinstance(excinfo.value.__cause__, StorageCorruption)

    def test_fault_counters_separate_transient_from_fatal(self):
        with make_service(chaos=certain_transient()) as service:
            with pytest.raises(TransientFault):
                service.query_sync(QUERIES, 3)
            requests = service.metrics.snapshot()["requests"]
            assert requests["faults_transient"] == 1
            assert requests["faults_fatal"] == 0
            # a typed fault is not an unexplained worker crash.
            assert requests["failures"] == 0
        with make_service(chaos=certain_corruption()) as service:
            with pytest.raises(FatalFault):
                service.query_sync(QUERIES, 3)
            requests = service.metrics.snapshot()["requests"]
            assert requests["faults_transient"] == 0
            assert requests["faults_fatal"] == 1

    def test_worker_survives_and_serves_after_fault(self):
        with make_service(chaos=certain_transient()) as service:
            with pytest.raises(TransientFault):
                service.query_sync(QUERIES, 3)
            # heal the disk: later queries must succeed on the same
            # service (the flight was landed, the worker not poisoned).
            service.injector.config = ChaosConfig(seed=5)
            response = service.query_sync(QUERIES, 3)
            assert len(response.results) == 3


class TestAsyncPath:
    def test_async_query_maps_faults_too(self):
        async def scenario():
            with make_service(chaos=certain_transient()) as service:
                with pytest.raises(TransientFault):
                    await service.query(QUERIES, 3)
                return service.metrics.snapshot()["requests"]

        requests = asyncio.run(scenario())
        assert requests["faults_transient"] == 1


class TestSnapshotAndNeutrality:
    def test_snapshot_exposes_injector_counters(self):
        with make_service(chaos=certain_transient()) as service:
            with pytest.raises(TransientFault):
                service.query_sync(QUERIES, 3)
            snap = service.snapshot()
            assert snap["faults"]["seed"] == 5
            assert snap["faults"]["counters"]["storage.read_transient"] > 0
            assert snap["faults"]["counters"]["storage.retry"] > 0

    def test_snapshot_without_chaos_has_no_faults_section(self):
        with make_service() as service:
            service.query_sync(QUERIES, 3)
            assert service.snapshot()["faults"] is None

    def test_zero_probability_chaos_serves_identical_answers(self):
        with make_service() as plain:
            expected = plain.query_sync(QUERIES, 4)
        with make_service(chaos=ChaosConfig(seed=0)) as chaotic:
            served = chaotic.query_sync(QUERIES, 4)
            assert [(r.object_id, r.score) for r in served.results] == [
                (r.object_id, r.score) for r in expected.results
            ]
            assert chaotic.snapshot()["faults"]["events"] == 0
