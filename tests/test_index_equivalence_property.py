"""Property test: the two indexes deliver identical NN semantics.

Both the M-tree and the VP-tree expose the incremental-cursor
contract; their streams over the same data must agree distance-wise
on arbitrary instances, which is what makes PBA index-agnostic.
"""

import random

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric
from repro.mtree import MTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager
from repro.vptree import VPTree

_points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=6,
    max_size=50,
)


def _spaces(points):
    def fresh():
        return MetricSpace(
            [np.array(p) for p in points],
            CountingMetric(EuclideanMetric()),
        )

    return fresh(), fresh()


@settings(max_examples=30, deadline=None)
@given(points=_points, query=st.integers(min_value=0, max_value=5))
def test_cursor_streams_agree(points, query):
    space_m, space_v = _spaces(points)
    mtree = MTree.build(
        space_m,
        LRUBuffer(PageManager(), capacity=32),
        node_capacity=5,
        rng=random.Random(0),
    )
    vptree = VPTree.build(
        space_v,
        LRUBuffer(PageManager(), capacity=32),
        leaf_capacity=4,
        rng=random.Random(0),
    )
    stream_m = [d for _i, d in mtree.incremental_cursor(query)]
    stream_v = [d for _i, d in vptree.incremental_cursor(query)]
    assert stream_m == pytest.approx(stream_v)
    assert len(stream_m) == len(points)


@settings(max_examples=20, deadline=None)
@given(
    points=_points,
    k=st.integers(min_value=1, max_value=8),
)
def test_prefixes_agree_as_sets_of_distances(points, k):
    space_m, space_v = _spaces(points)
    mtree = MTree.build(
        space_m,
        LRUBuffer(PageManager(), capacity=32),
        node_capacity=5,
        rng=random.Random(1),
    )
    vptree = VPTree.build(
        space_v,
        LRUBuffer(PageManager(), capacity=32),
        leaf_capacity=4,
        rng=random.Random(1),
    )
    import itertools

    pm = [d for _i, d in itertools.islice(mtree.incremental_cursor(0), k)]
    pv = [d for _i, d in itertools.islice(vptree.incremental_cursor(0), k)]
    assert pm == pytest.approx(pv)
