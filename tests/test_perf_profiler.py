"""Sampling-profiler tests (repro.obs.perf.profiler).

Most tests drive ``_sample_once`` directly from the test thread — the
sampler thread is just a timer around it — so stack contents are
deterministic.  One live test checks the thread lifecycle end to end.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.obs.export import spans_to_chrome, validate_chrome_trace
from repro.obs.perf.profiler import MAX_DEPTH, SamplingProfiler, frames_to_stack


def current_stack():
    return frames_to_stack(sys._getframe())


class TestFramesToStack:
    def test_root_first_and_labeled(self):
        def inner():
            return current_stack()

        stack = inner()
        # leaf is this helper chain; root is pytest's runner far above.
        assert stack[-1] == "test_perf_profiler:current_stack"
        assert stack[-2] == "test_perf_profiler:inner"
        assert all(":" in frame for frame in stack)

    def test_depth_cap(self):
        def recurse(n):
            if n == 0:
                return frames_to_stack(sys._getframe(), max_depth=5)
            return recurse(n - 1)

        assert len(recurse(50)) == 5
        assert MAX_DEPTH == 128

    def test_none_frame(self):
        assert frames_to_stack(None) == ()


class TestSamplingSynchronous:
    def test_sample_once_aggregates_current_thread(self):
        profiler = SamplingProfiler(include_profiler_thread=True)
        profiler._sample_once()
        profiler._sample_once()
        folded = profiler.folded()
        me = threading.current_thread().name
        mine = {k: v for k, v in folded.items() if k[0] == me}
        assert mine
        assert sum(mine.values()) == 2
        assert profiler.tick_count == 2
        assert profiler.sample_count >= 2

    def test_collapsed_lines_format_and_determinism(self):
        profiler = SamplingProfiler()
        profiler._folded = {
            ("MainThread", ("mod:main", "mod:work")): 7,
            ("worker 1", ("mod:main",)): 2,
        }
        lines = profiler.collapsed_lines()
        assert lines == [
            "MainThread;mod:main;mod:work 7",
            "worker_1;mod:main 2",  # spaces sanitised for the format
        ]

    def test_write_collapsed(self, tmp_path):
        profiler = SamplingProfiler()
        profiler._folded = {("T", ("a:b",)): 1}
        out = tmp_path / "profile.folded"
        assert profiler.write_collapsed(str(out)) == 1
        assert out.read_text() == "T;a:b 1\n"

    def test_timeline_ring_is_bounded(self):
        profiler = SamplingProfiler(
            timeline_capacity=3, include_profiler_thread=True
        )
        for _ in range(10):
            profiler._sample_once()
        assert len(profiler.timeline()) == 3
        assert profiler.dropped >= 7
        snap = profiler.snapshot()
        assert snap["timeline_dropped"] == profiler.dropped
        assert snap["ticks"] == 10
        assert snap["running"] is False

    def test_timeline_uses_injected_clock(self):
        ticks = iter([100.0, 101.0])
        profiler = SamplingProfiler(
            clock=lambda: next(ticks), include_profiler_thread=True
        )
        profiler._sample_once()
        profiler._sample_once()
        ts = {sample["ts"] for sample in profiler.timeline()}
        assert ts == {100.0, 101.0}

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)
        with pytest.raises(ValueError):
            SamplingProfiler(timeline_capacity=0)


class TestChromeMerge:
    def test_samples_become_instant_events(self):
        profiler = SamplingProfiler(include_profiler_thread=True)
        profiler._sample_once()
        samples = profiler.timeline()
        document = spans_to_chrome([], samples=samples)
        validate_chrome_trace(document)
        instants = [
            ev for ev in document["traceEvents"] if ev.get("cat") == "sample"
        ]
        assert len(instants) == len(samples)
        ev = instants[0]
        assert ev["ph"] == "i" and ev["s"] == "t"
        assert ev["name"].startswith("sample:")
        assert ";" in ev["args"]["stack"]
        assert ev["ts"] >= 0  # rebased to the common origin

    def test_samples_share_thread_metadata_with_spans(self):
        span = {
            "trace_id": "t1",
            "name": "query",
            "cat": "span",
            "start": 10.0,
            "end": 11.0,
            "thread": 111,
            "thread_name": "MainThread",
            "args": {},
            "costs": {},
        }
        sample = {
            "ts": 10.5,
            "thread": 111,
            "thread_name": "MainThread",
            "stack": ("m:f",),
        }
        document = spans_to_chrome([span], samples=[sample])
        tids = {
            ev["tid"]
            for ev in document["traceEvents"]
            if ev.get("cat") in ("span", "sample")
        }
        assert len(tids) == 1  # same OS thread -> same remapped tid


class TestLifecycle:
    def test_start_stop_collects_samples(self):
        profiler = SamplingProfiler(interval=0.001)
        deadline = time.monotonic() + 5.0
        with profiler:
            assert profiler.running
            while profiler.sample_count == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
        assert not profiler.running
        assert profiler.sample_count > 0
        # the sampler never records its own wait loop by default
        assert all(
            name != "repro-profiler" for name, _stack in profiler.folded()
        )

    def test_start_is_idempotent_and_stop_without_start_is_safe(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.stop()  # no-op
        profiler.start()
        first = profiler._thread
        profiler.start()
        assert profiler._thread is first
        profiler.stop()
        assert not profiler.running
