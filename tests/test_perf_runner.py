"""Runner and trajectory-file tests (repro.obs.perf.runner)."""

from __future__ import annotations

import json

import pytest

from repro.obs.perf.runner import (
    FILE_SCHEMA,
    RUN_SCHEMA,
    RunnerOptions,
    bench_file_path,
    load_bench_file,
    record_run,
    run_suite,
)
from repro.obs.perf.suites import SUITES, BenchCase, CaseSample, stable_seed


def constant_case(bench_id="t/one", wall=0.002, dists=10):
    def run():
        return CaseSample(
            wall_seconds=wall,
            counters={"distance_computations": dists, "page_faults": 3},
            metrics={"results": 5},
        )

    return BenchCase(id=bench_id, run=run, meta={"dataset": "t"})


def flaky_counter_case(bench_id="t/flaky"):
    calls = iter(range(100))

    def run():
        return CaseSample(
            wall_seconds=0.001,
            counters={"page_faults": 3, "cache_hits": next(calls)},
        )

    return BenchCase(id=bench_id, run=run)


class TestStableSeed:
    def test_deterministic_and_hash_free(self):
        # hash() of strings varies per process (PYTHONHASHSEED); the
        # CRC-based seed must not — pin known values.
        assert stable_seed("core", 42, "UNI", 5) == stable_seed(
            "core", 42, "UNI", 5
        )
        assert stable_seed("a") != stable_seed("b")
        assert stable_seed("core", 42) == 667455651

    def test_non_negative(self):
        for part in ("", "x", 0, -1, 3.5, ("a", 1)):
            assert 0 <= stable_seed(part) <= 0x7FFFFFFF


class TestRunSuite:
    def test_run_document_schema(self):
        run = run_suite(
            "synthetic",
            profile="smoke",
            options=RunnerOptions(warmup=1, repeats=3),
            cases=[constant_case()],
        )
        assert run["schema"] == RUN_SCHEMA
        assert run["suite"] == "synthetic"
        assert run["profile"] == "smoke"
        assert run["warmup"] == 1 and run["repeats"] == 3
        assert run["env"]["profile"] == "smoke"
        assert "python" in run["env"] and "cpu_count" in run["env"]
        (bench,) = run["benchmarks"]
        assert bench["id"] == "t/one"
        assert len(bench["wall_seconds"]) == 3
        assert bench["counters"] == {
            "distance_computations": 10,
            "page_faults": 3,
        }
        assert bench["meta"] == {"dataset": "t"}
        assert "nondeterministic_counters" not in bench

    def test_disagreeing_counters_are_demoted(self):
        run = run_suite(
            "synthetic",
            options=RunnerOptions(warmup=0, repeats=3),
            cases=[flaky_counter_case()],
        )
        (bench,) = run["benchmarks"]
        # page_faults agreed across repeats -> stays a gated counter;
        # cache_hits moved -> demoted, per-repeat values preserved.
        assert bench["counters"] == {"page_faults": 3}
        assert bench["nondeterministic_counters"] == ["cache_hits"]
        assert bench["metrics"]["cache_hits_per_repeat"] == [0, 1, 2]

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            run_suite("x", options=RunnerOptions(repeats=0), cases=[constant_case()])
        with pytest.raises(ValueError):
            run_suite("x", options=RunnerOptions(warmup=-1), cases=[constant_case()])
        with pytest.raises(ValueError):
            run_suite("synthetic", cases=[])

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("no-such-suite")

    def test_registry_has_the_five_suites(self):
        assert set(SUITES) == {
            "core", "serving", "chaos", "streaming", "backends",
        }


class TestTrajectoryFile:
    def test_first_run_becomes_baseline(self, tmp_path):
        path = bench_file_path("core", str(tmp_path))
        assert path.endswith("BENCH_core.json")
        run = run_suite("core", cases=[constant_case()],
                        options=RunnerOptions(warmup=0, repeats=1))
        document = record_run(path, run)
        assert document["schema"] == FILE_SCHEMA
        assert document["baseline"] == run
        assert document["runs"] == [run]
        # round-trips through the schema-checked loader
        assert load_bench_file(path)["suite"] == "core"

    def test_baseline_is_pinned_until_rebaseline(self, tmp_path):
        path = bench_file_path("core", str(tmp_path))
        options = RunnerOptions(warmup=0, repeats=1)
        first = run_suite("core", cases=[constant_case(dists=10)], options=options)
        second = run_suite("core", cases=[constant_case(dists=99)], options=options)
        record_run(path, first)
        document = record_run(path, second)
        assert document["baseline"] == first  # pinned
        assert len(document["runs"]) == 2
        document = record_run(path, second, rebaseline=True)
        assert document["baseline"] == second

    def test_history_is_bounded(self, tmp_path):
        path = bench_file_path("core", str(tmp_path))
        options = RunnerOptions(warmup=0, repeats=1)
        for _ in range(5):
            run = run_suite("core", cases=[constant_case()], options=options)
            record_run(path, run, max_history=3)
        document = load_bench_file(path)
        assert len(document["runs"]) == 3
        assert document["baseline"] is not None  # survives trimming

    def test_suite_mismatch_refused(self, tmp_path):
        path = bench_file_path("core", str(tmp_path))
        options = RunnerOptions(warmup=0, repeats=1)
        record_run(path, run_suite("core", cases=[constant_case()], options=options))
        other = run_suite("serving", cases=[constant_case()], options=options)
        with pytest.raises(ValueError, match="refusing"):
            record_run(path, other)

    def test_loader_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_bogus.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="repro-bench/1"):
            load_bench_file(str(path))
