"""The shape-check engine and the EXPERIMENTS.md generator."""

import json

import pytest

from repro.bench.experiments_md import main as exp_main
from repro.bench.experiments_md import render_experiments_md
from repro.bench.shapes import SHAPE_CHECKS, run_shape_checks


def _cell(
    dataset="UNI",
    algorithm="pba2",
    parameter="m",
    value=5,
    m=5,
    k=10,
    c=0.2,
    cpu=0.1,
    io=0.2,
    dists=100,
    exact=10,
):
    return {
        "dataset": dataset,
        "algorithm": algorithm,
        "parameter": parameter,
        "value": value,
        "m": m,
        "k": k,
        "c": c,
        "cpu_seconds": cpu,
        "io_seconds": io,
        "page_faults": int(io / 0.008),
        "distance_computations": dists,
        "exact_score_computations": exact,
    }


def good_cells():
    """A synthetic result set satisfying every paper claim."""
    cells = []
    for dataset in ("UNI", "CAL"):
        cal = dataset == "CAL"
        for m in (2, 5, 10):
            for algorithm, dists, cpu, io, exact in (
                ("sba", 4000, 1.0, 2.0, 200),
                ("aba", 8000, 2.0, 4.0, 800),
                ("pba1", 900 + 10 * m, 0.2, 0.3, 20),
                ("pba2", 800 + 10 * m, 0.5 if cal else 0.1,
                 0.05 if cal else 0.3, 20),
            ):
                cells.append(
                    _cell(dataset, algorithm, "m", m, m=m, dists=dists,
                          cpu=cpu, io=io, exact=exact)
                )
        for k in (1, 10, 30):
            for algorithm in ("sba", "aba", "pba1", "pba2"):
                exact = 30 * k if algorithm in ("sba", "aba") else 10 + k
                cells.append(
                    _cell(dataset, algorithm, "k", k, k=k, exact=exact)
                )
        for c in (0.01, 0.2, 0.5):
            for algorithm in ("sba", "aba", "pba1", "pba2"):
                exact = (
                    int(1000 * c) + 100
                    if algorithm == "sba"
                    else 20
                )
                cells.append(
                    _cell(dataset, algorithm, "c", c, c=c, exact=exact)
                )
    return cells


class TestShapeChecks:
    def test_all_pass_on_conforming_data(self):
        verdicts = run_shape_checks(good_cells())
        assert all(verdicts.values()), verdicts

    def test_pba_distances_fails_when_pba_loses(self):
        cells = good_cells()
        for cell in cells:
            if cell["algorithm"] == "pba2" and cell["parameter"] == "m":
                cell["distance_computations"] = 10**9
        verdicts = run_shape_checks(cells)
        assert not verdicts["pba-distances"]

    def test_cal_cpu_bound_fails_when_inverted(self):
        cells = good_cells()
        for cell in cells:
            if cell["dataset"] == "CAL" and cell["algorithm"] == "pba2":
                cell["cpu_seconds"] = 0.0001
                cell["io_seconds"] = 10.0
        verdicts = run_shape_checks(cells)
        assert not verdicts["cal-cpu-bound"]

    def test_empty_cells_fail_gracefully(self):
        verdicts = run_shape_checks([])
        assert set(verdicts) == {check.key for check in SHAPE_CHECKS}
        assert not verdicts["pba-distances"]

    def test_real_harness_results_pass(self):
        """The committed quick-profile run must satisfy every claim."""
        import pathlib

        path = pathlib.Path(__file__).parent.parent / (
            "results/quick_all.json"
        )
        if not path.exists():
            pytest.skip("no harness results committed")
        cells = json.loads(path.read_text())
        verdicts = run_shape_checks(cells)
        assert all(verdicts.values()), verdicts


class TestExperimentsMd:
    def test_render_contains_all_sections(self):
        text = render_experiments_md(good_cells(), "note here")
        for heading in (
            "# EXPERIMENTS", "## Shape-check summary",
            "## Figure 4", "## Figure 8", "## Table 2", "## Table 3",
        ):
            assert heading in text
        assert "note here" in text
        assert "PASS" in text

    def test_render_includes_paper_reference_tables(self):
        text = render_experiments_md(good_cells())
        assert "Paper Table 2" in text
        assert "Paper Table 3" in text

    def test_cli_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "cells.json"
        path.write_text(json.dumps(good_cells()))
        assert exp_main([str(path), "profile", "note"]) == 0
        out = capsys.readouterr().out
        assert "profile note" in out

    def test_cli_usage_error(self, capsys):
        assert exp_main([]) == 2
