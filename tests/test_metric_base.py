"""Unit tests for MetricSpace and the axiom checker."""

import random

import numpy as np
import pytest

from repro.metric.base import (
    MetricAxiomError,
    MetricSpace,
    check_metric_axioms,
)
from repro.metric.vector import EuclideanMetric


class _BrokenAsymmetric:
    name = "broken"

    def __call__(self, a, b):
        return float(a - b) if a > b else float(b - a) * 2


class _BrokenTriangle:
    name = "broken-triangle"

    def __call__(self, a, b):
        return abs(a - b) ** 2  # squared distance violates triangle


class TestAxiomChecker:
    def test_accepts_euclidean(self):
        payloads = [np.array([i, i % 3]) for i in range(20)]
        check_metric_axioms(EuclideanMetric(), payloads)

    def test_rejects_asymmetry(self):
        with pytest.raises(MetricAxiomError):
            check_metric_axioms(_BrokenAsymmetric(), list(range(10)))

    def test_rejects_triangle_violation(self):
        with pytest.raises(MetricAxiomError):
            check_metric_axioms(
                _BrokenTriangle(), [0.0, 1.0, 2.0, 5.0], sample_triples=500
            )

    def test_empty_payloads_ok(self):
        check_metric_axioms(EuclideanMetric(), [])


class TestMetricSpace:
    @pytest.fixture
    def space(self):
        rng = np.random.default_rng(0)
        return MetricSpace(
            list(rng.random((30, 2))), EuclideanMetric(), name="s"
        )

    def test_len_and_ids(self, space):
        assert len(space) == 30
        assert list(space.object_ids) == list(range(30))

    def test_distance_matches_metric(self, space):
        expected = EuclideanMetric()(space.payload(1), space.payload(2))
        assert space.distance(1, 2) == pytest.approx(expected)

    def test_distance_to_payload(self, space):
        probe = np.array([0.5, 0.5])
        expected = EuclideanMetric()(space.payload(3), probe)
        assert space.distance_to_payload(3, probe) == pytest.approx(expected)

    def test_medoid_is_central(self, space):
        medoid = space.medoid()
        rng = random.Random(1)
        worst = max(
            range(30),
            key=lambda i: sum(space.distance(i, j) for j in range(30)),
        )
        cost_medoid = sum(space.distance(medoid, j) for j in range(30))
        cost_worst = sum(space.distance(worst, j) for j in range(30))
        assert cost_medoid <= cost_worst

    def test_approximate_radius_covers_sample(self, space):
        center = space.medoid()
        radius = space.approximate_radius(center=center, sample=30)
        for i in space.object_ids:
            assert space.distance(center, i) <= radius + 1e-9

    def test_empty_space_radius_zero(self):
        space = MetricSpace([], EuclideanMetric())
        assert space.approximate_radius() == 0.0

    def test_empty_space_medoid_raises(self):
        space = MetricSpace([], EuclideanMetric())
        with pytest.raises(ValueError):
            space.medoid()
