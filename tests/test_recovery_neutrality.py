"""Durability must stay OFF the query hot path.

The paper's gated cost counters — distance computations, logical page
reads, page faults — are the reproduction's ground truth, and
``repro-bench gate --counters-only`` pins them in CI.  Enabling WAL +
checkpoints must leave every one of them bit-identical: WAL capture is
transaction-gated (only engine write paths open a capture window), so
a query on a durable engine touches exactly the same pages and metric
calls as on a volatile one.
"""

from __future__ import annotations

import numpy as np

from repro.api import open_engine

from tests.conftest import make_vector_space

DIMS = 3
QUERIES = [([2, 9, 17], 5), ([1, 4], 3), ([20, 33, 41, 8], 6)]


def counter_tuple(stats):
    """The gated counters (everything except wall-clock time)."""
    return (
        stats.distance_computations,
        stats.exact_score_computations,
        stats.objects_retrieved,
        stats.objects_pruned,
        stats.results_reported,
        stats.io.logical_reads,
        stats.io.logical_writes,
        stats.io.page_faults,
        stats.io.buffer_hits,
        stats.io.pages_allocated,
    )


def twin_engines(tmp_path, n=70, seed=6):
    volatile = open_engine(make_vector_space(n=n, dims=DIMS, seed=seed),
                           seed=seed)
    durable = open_engine(
        make_vector_space(n=n, dims=DIMS, seed=seed),
        seed=seed,
        durability=str(tmp_path / "state"),
    )
    return volatile, durable


def run_queries(engine):
    out = []
    for query_ids, k in QUERIES:
        items, stats = engine.top_k_dominating(query_ids, k)
        out.append((
            [(item.object_id, item.score) for item in items],
            counter_tuple(stats),
        ))
    return out


def test_queries_are_bit_identical_on_a_durable_engine(tmp_path):
    volatile, durable = twin_engines(tmp_path)
    assert run_queries(volatile) == run_queries(durable)
    # and the durable run logged nothing: queries never reach the WAL.
    wal = durable.durability.wal.snapshot()
    assert wal["records_appended"] == 0
    assert wal["pending_bytes"] == 0


def test_counters_stay_identical_across_a_write_mix(tmp_path):
    volatile, durable = twin_engines(tmp_path)
    rng_a = np.random.default_rng(12)
    rng_b = np.random.default_rng(12)
    for i in range(10):
        if i % 3 == 2:
            volatile.delete_object(i)
            durable.delete_object(i)
        else:
            volatile.insert_object(rng_a.random(DIMS))
            durable.insert_object(rng_b.random(DIMS))
    assert volatile.epoch == durable.epoch
    assert sorted(volatile.tree.object_ids()) == sorted(
        durable.tree.object_ids()
    )
    assert run_queries(volatile) == run_queries(durable)


def test_recovered_engine_answers_with_identical_counters(tmp_path):
    volatile, durable = twin_engines(tmp_path)
    rng_a = np.random.default_rng(13)
    rng_b = np.random.default_rng(13)
    for _ in range(6):
        volatile.insert_object(rng_a.random(DIMS))
        durable.insert_object(rng_b.random(DIMS))
    durable.durability.close()
    recovered = open_engine(recover_from=str(tmp_path / "state"))
    volatile_runs = run_queries(volatile)
    recovered_runs = run_queries(recovered)
    # results must match everywhere; the paper's pure-CPU counters
    # must too.  (Buffer temperature differs by construction — the
    # volatile engine's buffers are warm from the build, the recovered
    # one starts cold — so fault/hit splits are compared after one
    # warming pass instead.)
    for (v_items, v_counters), (r_items, r_counters) in zip(
        volatile_runs, recovered_runs
    ):
        assert v_items == r_items
        assert v_counters[:5] == r_counters[:5]
    assert run_queries(recovered) == run_queries(volatile)
