"""Property-based tests: the B+-tree vs a dict/sorted-list model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.btree import BPlusTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

# operations: ("insert", key, value) | ("delete", key) | ("get", key)
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=0, max_value=200),
            st.integers(),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("get"), st.integers(min_value=0, max_value=200)),
    ),
    max_size=120,
)


def run_model(ops, order):
    tree = BPlusTree(LRUBuffer(PageManager(), capacity=8), order=order)
    model = {}
    for op in ops:
        if op[0] == "insert":
            _tag, key, value = op
            tree.insert(key, value)
            model[key] = value
        elif op[0] == "delete":
            _tag, key = op
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            _tag, key = op
            assert tree.get(key) == model.get(key)
    return tree, model


@settings(max_examples=60, deadline=None)
@given(ops=_ops, order=st.integers(min_value=3, max_value=9))
def test_btree_matches_dict_model(ops, order):
    tree, model = run_model(ops, order)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=-10_000, max_value=10_000),
        unique=True,
        max_size=150,
    ),
    order=st.integers(min_value=3, max_value=8),
)
def test_iteration_always_sorted(keys, order):
    tree = BPlusTree(LRUBuffer(PageManager(), capacity=8), order=order)
    for key in keys:
        tree.insert(key, str(key))
    assert list(tree.keys()) == sorted(keys)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=500), unique=True, min_size=1,
        max_size=100,
    ),
    bounds=st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    ),
)
def test_range_scan_matches_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    tree = BPlusTree(LRUBuffer(PageManager(), capacity=8), order=5)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.items(low=low, high=high)] == expected
