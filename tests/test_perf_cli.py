"""End-to-end CLI tests for the repro-bench perf subcommands.

Drive ``repro.bench.cli.main`` against hand-built trajectory files via
``--file`` — no real suite execution, so these stay fast and the exit
codes are deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main
from repro.obs.perf.runner import record_run


def make_run(dists=100, wall=0.010, created=1.0):
    return {
        "schema": "repro-bench-run/1",
        "suite": "core",
        "profile": "smoke",
        "created": created,
        "warmup": 1,
        "repeats": 3,
        "wall_seconds_total": 0.1,
        "env": {"git_sha": "a" * 40, "python": "3.12.0"},
        "benchmarks": [
            {
                "id": "UNI/pba2/m=5",
                "wall_seconds": [wall, wall, wall],
                "counters": {"distance_computations": dists},
                "metrics": {},
            }
        ],
    }


@pytest.fixture
def trajectory(tmp_path):
    path = str(tmp_path / "BENCH_core.json")
    record_run(path, make_run(created=1.0))
    return path


class TestGateExitCodes:
    def test_identical_runs_pass(self, trajectory):
        record_run(trajectory, make_run(created=2.0))
        assert main(["gate", "--file", trajectory]) == 0

    def test_counter_regression_fails(self, trajectory, capsys):
        record_run(trajectory, make_run(dists=101, created=2.0))
        assert main(["gate", "--file", trajectory]) == 1
        out = capsys.readouterr()
        assert "100 -> 101" in out.out
        # the failure banner points at the documented triage procedure
        assert "Reading a gate failure" in out.err

    def test_wall_slowdown_warns_by_default_fails_with_wall_flag(
        self, trajectory, capsys
    ):
        record_run(trajectory, make_run(wall=0.020, created=2.0))
        assert main(["gate", "--file", trajectory]) == 0
        assert "[WARN]" in capsys.readouterr().out
        assert main(["gate", "--file", trajectory, "--wall"]) == 1

    def test_counters_only_ignores_wall_entirely(self, trajectory, capsys):
        record_run(trajectory, make_run(wall=0.200, created=2.0))
        assert (
            main(["gate", "--file", trajectory, "--counters-only", "--wall"])
            == 0
        )
        assert "WARN" not in capsys.readouterr().out

    def test_against_previous(self, trajectory):
        record_run(trajectory, make_run(dists=101, created=2.0))
        record_run(trajectory, make_run(dists=101, created=3.0))
        # vs pinned baseline: regression; vs previous run: identical
        assert main(["gate", "--file", trajectory]) == 1
        assert (
            main(["gate", "--file", trajectory, "--against", "previous"]) == 0
        )

    def test_missing_file_is_usage_error(self, tmp_path):
        assert main(["gate", "--file", str(tmp_path / "nope.json")]) == 2


class TestCompareAndHistory:
    def test_compare_reports_without_failing(self, trajectory, capsys):
        record_run(trajectory, make_run(dists=150, created=2.0))
        assert main(["compare", "--file", trajectory]) == 0
        out = capsys.readouterr().out
        assert "gate: FAIL" in out  # report text still shows the verdict

    def test_history_marks_pinned_baseline(self, trajectory, capsys):
        record_run(trajectory, make_run(created=2.0))
        assert main(["history", "--file", trajectory]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "(* = pinned baseline)" in out

    def test_history_single_benchmark(self, trajectory, capsys):
        assert (
            main(
                [
                    "history",
                    "--file",
                    trajectory,
                    "--benchmark",
                    "UNI/pba2/m=5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "distance_computations=100" in out

    def test_rebaselined_file_round_trips(self, trajectory):
        record_run(trajectory, make_run(dists=120, created=2.0), rebaseline=True)
        assert main(["gate", "--file", trajectory]) == 0
        document = json.load(open(trajectory))
        assert (
            document["baseline"]["benchmarks"][0]["counters"][
                "distance_computations"
            ]
            == 120
        )
