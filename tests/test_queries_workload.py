"""Query-workload generation: the coverage parameter c."""

import random

import pytest

from repro.datasets import QueryWorkload, select_query_objects, uniform

from tests.conftest import make_vector_space


@pytest.fixture(scope="module")
def space():
    return make_vector_space(n=400, dims=3, seed=17)


class TestSelectQueryObjects:
    def test_returns_m_distinct_members(self, space):
        queries = select_query_objects(
            space, m=6, coverage=0.3, rng=random.Random(0)
        )
        assert len(queries) == 6
        assert len(set(queries)) == 6
        assert all(0 <= q < len(space) for q in queries)

    def test_coverage_bounds_enclosing_radius(self, space):
        # coverages large enough that the ball is populated at n=400:
        # the realized spread must respect the target exactly.
        radius = space.approximate_radius(rng=random.Random(1))
        for coverage in (0.2, 0.35, 0.5):
            queries = select_query_objects(
                space,
                m=5,
                coverage=coverage,
                rng=random.Random(2),
                dataset_radius=radius,
            )
            anchor = queries[0]
            spread = max(space.distance(anchor, q) for q in queries[1:])
            assert spread <= coverage * radius + 1e-9

    def test_sparse_ball_best_effort_is_tight(self, space):
        # at c so small the ball is empty, the best-effort fallback
        # must return the anchor's nearest sampled neighbors, not an
        # unconstrained (far-flung) sample.
        radius = space.approximate_radius(rng=random.Random(11))
        queries = select_query_objects(
            space, m=5, coverage=0.001, rng=random.Random(12),
            dataset_radius=radius,
        )
        anchor = queries[0]
        spread = max(space.distance(anchor, q) for q in queries[1:])
        assert spread < 0.4 * radius

    def test_larger_coverage_spreads_queries(self, space):
        radius = space.approximate_radius(rng=random.Random(3))

        def mean_spread(coverage):
            total = 0.0
            for rep in range(8):
                queries = select_query_objects(
                    space,
                    m=5,
                    coverage=coverage,
                    rng=random.Random(100 + rep),
                    dataset_radius=radius,
                )
                anchor = queries[0]
                total += max(
                    space.distance(anchor, q) for q in queries[1:]
                )
            return total / 8

        assert mean_spread(0.05) < mean_spread(0.5)

    def test_m_equals_n(self):
        tiny = make_vector_space(n=5, dims=2, seed=18)
        queries = select_query_objects(
            tiny, m=5, coverage=0.2, rng=random.Random(4)
        )
        assert sorted(queries) == [0, 1, 2, 3, 4]

    def test_m_exceeding_n_rejected(self):
        tiny = make_vector_space(n=4, dims=2, seed=19)
        with pytest.raises(ValueError):
            select_query_objects(tiny, m=9, coverage=0.5)

    def test_degenerate_space_falls_back(self):
        # all points coincide: every ball is a point; fallback must
        # still deliver m distinct ids.
        import numpy as np

        from repro.metric.base import MetricSpace
        from repro.metric.counting import CountingMetric
        from repro.metric.vector import EuclideanMetric

        coincident = MetricSpace(
            [np.zeros(2)] * 10, CountingMetric(EuclideanMetric())
        )
        queries = select_query_objects(
            coincident, m=3, coverage=0.1, rng=random.Random(5)
        )
        assert len(set(queries)) == 3


class TestQueryWorkload:
    def test_validation(self, space):
        with pytest.raises(ValueError):
            QueryWorkload(space, m=0)
        with pytest.raises(ValueError):
            QueryWorkload(space, coverage=0.0)
        with pytest.raises(ValueError):
            QueryWorkload(space, coverage=1.5)

    def test_stream_is_reproducible(self, space):
        a = QueryWorkload(space, m=4, coverage=0.2, seed=7)
        b = QueryWorkload(space, m=4, coverage=0.2, seed=7)
        assert [a.next_query_set() for _ in range(3)] == [
            b.next_query_set() for _ in range(3)
        ]

    def test_stream_varies_across_draws(self, space):
        workload = QueryWorkload(space, m=4, coverage=0.2, seed=8)
        draws = {tuple(workload.next_query_set()) for _ in range(5)}
        assert len(draws) > 1

    def test_radius_cached(self, space):
        workload = QueryWorkload(space, m=3, coverage=0.2, seed=9)
        first = workload.dataset_radius
        assert workload.dataset_radius == first

    def test_paper_defaults(self, space):
        workload = QueryWorkload(space)
        assert workload.m == 5
        assert workload.coverage == pytest.approx(0.20)
