"""The paper's lemmas as executable properties.

Each test realizes one lemma of Section 4 on randomized instances; the
algorithms' correctness arguments rest on exactly these facts.
"""

import itertools
import random

import pytest

from repro.anns import AggregateNNCursor
from repro.core.brute_force import brute_force_scores
from repro.core.dominance import DistanceVectorSource
from repro.mtree import IncrementalNNCursor
from repro.skyline import naive_metric_skyline

from tests.conftest import make_engine


def setup(seed, n=100, grid=None, m=3):
    engine = make_engine(n=n, seed=seed, grid=grid)
    queries = random.Random(seed + 77).sample(range(n), m)
    source = DistanceVectorSource(engine.space, queries)
    truth = brute_force_scores(engine.space, queries)
    return engine, queries, source, truth


@pytest.mark.parametrize("seed", range(4))
class TestLemma1:
    """The top-1 dominating object is a metric skyline object."""

    def test_top1_in_skyline(self, seed):
        engine, queries, _source, truth = setup(seed, grid=3 if seed % 2 else None)
        best_score = max(truth.values())
        skyline = set(naive_metric_skyline(engine.space, queries))
        tops = [obj for obj, score in truth.items() if score == best_score]
        # every maximum-score object must be undominated.
        for top in tops:
            assert top in skyline


@pytest.mark.parametrize("seed", range(4))
class TestLemma2:
    """p ≺ r implies adist(p, Q) < adist(r, Q) (sum aggregate)."""

    def test_dominance_implies_smaller_sum(self, seed):
        engine, queries, source, _truth = setup(seed, n=60)
        for a in range(60):
            for b in range(60):
                if a != b and source.dominates(a, b):
                    assert source.aggregate_distance(a) < (
                        source.aggregate_distance(b)
                    )


@pytest.mark.parametrize("seed", range(4))
class TestLemma3:
    """ANN(Q, 1) is a metric skyline object."""

    def test_first_ann_in_skyline(self, seed):
        engine, queries, source, _truth = setup(seed, grid=4 if seed % 2 else None)
        first, _adist = next(AggregateNNCursor(engine.tree, queries))
        assert first in set(naive_metric_skyline(engine.space, queries))


@pytest.mark.parametrize("seed", range(3))
class TestLemma4:
    """A common neighbor dominates every object not yet seen in any
    stream (strict version: modulo equivalent objects)."""

    def test_common_neighbor_dominates_unseen(self, seed):
        engine, queries, source, _truth = setup(seed, n=80)
        cursors = [
            IncrementalNNCursor(engine.tree, q) for q in queries
        ]
        seen_by = [set() for _ in queries]
        common = None
        # round-robin until the first common neighbor appears.
        for j in itertools.cycle(range(len(queries))):
            object_id, _d = next(cursors[j])
            seen_by[j].add(object_id)
            if all(object_id in s for s in seen_by):
                common = object_id
                break
        seen_any = set().union(*seen_by)
        for unseen in set(engine.space.object_ids) - seen_any:
            assert source.dominates(common, unseen) or source.equivalent(
                common, unseen
            )


@pytest.mark.parametrize("seed", range(3))
class TestLemma5:
    """Score estimation upper bounds (Lemma 5 and its tie-safe form).

    The paper states ``dom(o) <= n - max_j rank(o,qj) + eq(o)``; with
    distance ties that can undercount (an object tied with o — but not
    equivalent — preceding it in one NN order may still be dominated
    by o).  The implementation therefore uses the equal-distance
    group's leftmost rank (``Lpos``): ``dom(o) <= n - max_j Lpos_j(o)
    - eq(o)``, which these tests verify; for tie-free data both
    formulas coincide, which is also verified.
    """

    def _orders(self, engine, queries):
        for q in queries:
            yield sorted(
                engine.space.object_ids,
                key=lambda i, q=q: (engine.space.distance(i, q), i),
            ), q

    def test_lpos_estimate_is_upper_bound(self, seed):
        engine, queries, source, truth = setup(
            seed, n=70, grid=3 if seed % 2 else None
        )
        n = 70
        lpos_maps = []
        for order, q in self._orders(engine, queries):
            lpos = {}
            group_start = 1
            for position, obj in enumerate(order, start=1):
                if position > 1:
                    prev = order[position - 2]
                    if engine.space.distance(obj, q) != (
                        engine.space.distance(prev, q)
                    ):
                        group_start = position
                lpos[obj] = group_start
            lpos_maps.append(lpos)
        for obj in engine.space.object_ids:
            eq = sum(
                1
                for other in engine.space.object_ids
                if other != obj and source.equivalent(obj, other)
            )
            estdom = n - max(lp[obj] for lp in lpos_maps) - eq
            assert truth[obj] <= estdom

    def test_rank_formula_coincides_without_ties(self, seed):
        engine, queries, source, truth = setup(seed, n=60)  # continuous
        n = 60
        ranks = []
        for order, _q in self._orders(engine, queries):
            ranks.append({obj: r + 1 for r, obj in enumerate(order)})
        for obj in engine.space.object_ids:
            estdom = n - max(r[obj] for r in ranks)  # eq = 0
            assert truth[obj] <= estdom


@pytest.mark.parametrize("seed", range(3))
class TestLemma7:
    """dom(o) = n - |U| - eq(o) - 1 with U the strictly-closer union."""

    def test_formula_against_brute_force(self, seed):
        engine, queries, source, truth = setup(
            seed, n=60, grid=3 if seed % 2 else None
        )
        n = 60
        for obj in engine.space.object_ids:
            vec = source.vector(obj)
            u = {
                other
                for other in engine.space.object_ids
                if other != obj
                and any(
                    source.vector(other)[j] < vec[j]
                    for j in range(len(queries))
                )
            }
            eq = sum(
                1
                for other in engine.space.object_ids
                if other != obj and source.equivalent(obj, other)
            )
            assert truth[obj] == n - len(u) - eq - 1
