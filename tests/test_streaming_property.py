"""Property test: the sliding window always matches the oracle.

Arbitrary interleavings of appends and queries must leave the window's
answers equal to the brute-force result over its live contents.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.brute_force import brute_force_scores
from repro.streaming import SlidingWindowTopK

from tests.conftest import make_engine


@st.composite
def scenarios(draw):
    initial = draw(st.integers(min_value=8, max_value=20))
    window_size = draw(st.integers(min_value=initial, max_value=24))
    appends = draw(st.integers(min_value=0, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return initial, window_size, appends, seed


@settings(max_examples=20, deadline=None)
@given(scenario=scenarios())
def test_window_answers_match_oracle(scenario):
    initial, window_size, appends, seed = scenario
    engine = make_engine(n=initial, seed=seed)
    window = SlidingWindowTopK(engine, window_size=window_size)
    rng = np.random.default_rng(seed)
    for _ in range(appends):
        window.append(rng.random(3))

    live = window.live_ids
    assert len(live) == min(initial + appends, window_size)
    queries = live[:2]
    k = min(5, len(live))
    results, _ = window.top_k(queries, k)
    truth = brute_force_scores(engine.space, queries, universe=live)
    assert [r.score for r in results] == sorted(
        truth.values(), reverse=True
    )[:k]


@settings(max_examples=15, deadline=None)
@given(scenario=scenarios())
def test_expired_ids_stay_gone(scenario):
    initial, window_size, appends, seed = scenario
    engine = make_engine(n=initial, seed=seed)
    window = SlidingWindowTopK(engine, window_size=window_size)
    rng = np.random.default_rng(seed + 1)
    expired = set()
    for _ in range(appends):
        event = window.append(rng.random(3))
        if event.expired is not None:
            expired.add(event.expired)
    assert not (expired & set(window.live_ids))
    for victim in expired:
        assert victim not in engine.tree
