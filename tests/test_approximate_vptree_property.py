"""Property tests for the approximate algorithm's exactness limits and
candidate generation across indexes."""

import random

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro import TopKDominatingEngine
from repro.core.approximate import ApproximateTopK
from repro.core.brute_force import brute_force_scores
from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=10, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=400))
    m = draw(st.integers(min_value=1, max_value=3))
    k = draw(st.integers(min_value=1, max_value=min(6, n)))
    index = draw(st.sampled_from(["mtree", "vptree"]))
    return n, seed, m, k, index


@settings(max_examples=20, deadline=None)
@given(instance=instances())
def test_full_budget_apx_is_exact_on_any_index(instance):
    """With candidate pool = sample = n the approximate algorithm must
    degenerate to the exact answer, whatever the index."""
    n, seed, m, k, index = instance
    rng = np.random.default_rng(seed)
    points = list(rng.random((n, 3)))
    space = MetricSpace(points, CountingMetric(EuclideanMetric()))
    engine = TopKDominatingEngine(
        space, rng=random.Random(seed), index=index
    )
    queries = random.Random(seed).sample(range(n), m)
    truth = brute_force_scores(engine.space, queries)
    algo = ApproximateTopK(
        engine.make_context(),
        candidate_pool=n,
        sample_size=n,
        seed=seed,
    )
    results = list(algo.run(queries, k))
    assert [r.score for r in results] == sorted(
        truth.values(), reverse=True
    )[:k]


@settings(max_examples=15, deadline=None)
@given(instance=instances())
def test_apx_scores_never_exceed_n_minus_one(instance):
    n, seed, m, k, index = instance
    rng = np.random.default_rng(seed)
    points = list(rng.random((n, 3)))
    space = MetricSpace(points, CountingMetric(EuclideanMetric()))
    engine = TopKDominatingEngine(
        space, rng=random.Random(seed), index=index
    )
    queries = random.Random(seed).sample(range(n), m)
    algo = ApproximateTopK(
        engine.make_context(), sample_size=5, seed=seed
    )
    for item in algo.run(queries, k):
        assert 0 <= item.score <= n - 1
