"""Unit and property tests for the edit-distance metric."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.metric.strings import EditDistanceMetric, levenshtein

_dna = st.text(alphabet="ACGT", max_size=12)


class TestKnownValues:
    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("ACGT", "AGGT") == 1

    def test_single_insertion(self):
        assert levenshtein("ACG", "ACGT") == 1

    def test_transposition_costs_two(self):
        assert levenshtein("AB", "BA") == 2

    def test_metric_wrapper_returns_float(self):
        metric = EditDistanceMetric()
        assert metric("AC", "AG") == 1.0
        assert isinstance(metric("A", "G"), float)
        assert metric.name == "edit-distance"


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=_dna, b=_dna)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=60, deadline=None)
    @given(a=_dna, b=_dna)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=40, deadline=None)
    @given(a=_dna, b=_dna, c=_dna)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, b) <= levenshtein(a, c) + levenshtein(c, b)

    @settings(max_examples=40, deadline=None)
    @given(a=_dna)
    def test_identity_of_indiscernibles(self, a):
        assert levenshtein(a, a) == 0

    @settings(max_examples=40, deadline=None)
    @given(a=_dna, b=_dna)
    def test_zero_implies_equal(self, a, b):
        if levenshtein(a, b) == 0:
            assert a == b
