"""Metric skyline: B²MS²-style algorithm vs the naive oracle."""

import random

import pytest

from repro.core.dominance import DistanceVectorSource
from repro.mtree import MTree
from repro.skyline import metric_skyline, naive_metric_skyline
from repro.skyline.b2ms2 import metric_skyline_cursor
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


def build(n=200, seed=0, grid=None, capacity=10):
    space = make_vector_space(n, dims=3, seed=seed, grid=grid)
    buf = LRUBuffer(PageManager(), capacity=64)
    tree = MTree.build(
        space, buf, node_capacity=capacity, rng=random.Random(seed)
    )
    return tree, space


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_naive_continuous(self, seed):
        tree, space = build(n=150, seed=seed)
        queries = random.Random(seed).sample(range(150), 3)
        assert sorted(metric_skyline(tree, queries)) == sorted(
            naive_metric_skyline(space, queries)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_naive_with_ties(self, seed):
        tree, space = build(n=120, seed=seed, grid=3)
        queries = random.Random(seed + 10).sample(range(120), 4)
        assert sorted(metric_skyline(tree, queries)) == sorted(
            naive_metric_skyline(space, queries)
        )

    def test_single_query_object(self):
        tree, space = build(n=100, seed=9)
        skyline = metric_skyline(tree, [5])
        # with one query object the skyline is the set of objects at
        # minimum distance to it — i.e. the query object itself plus
        # any coincident duplicates.
        assert 5 in skyline
        for other in skyline:
            assert space.distance(5, other) == 0.0


class TestSkipSet:
    def test_skip_excludes_and_reexposes(self):
        tree, space = build(n=150, seed=2, grid=4)
        queries = [0, 50, 100]
        full = metric_skyline(tree, queries)
        skipped = set(full[:2])
        reduced = metric_skyline(tree, queries, skip=skipped)
        assert not (set(reduced) & skipped)
        universe = [i for i in space.object_ids if i not in skipped]
        assert sorted(reduced) == sorted(
            naive_metric_skyline(space, queries, universe=universe)
        )

    def test_skip_everything_leaves_nothing(self):
        tree, space = build(n=40, seed=3)
        skyline = metric_skyline(
            tree, [0, 1], skip=set(space.object_ids)
        )
        assert skyline == []


class TestProgressiveness:
    def test_first_yield_is_aggregate_nn(self):
        """Lemma 3: the first skyline object reported by the best-first
        traversal is the sum-aggregate 1-NN."""
        tree, space = build(n=150, seed=4)
        queries = [7, 70, 140]
        source = DistanceVectorSource(space, queries)
        cursor = metric_skyline_cursor(tree, queries, vectors=source)
        first = next(cursor)
        best_adist = min(
            sum(source.vector(i)) for i in space.object_ids
        )
        assert sum(source.vector(first)) == pytest.approx(best_adist)

    def test_yields_in_nondecreasing_adist_order(self):
        tree, space = build(n=150, seed=5)
        queries = [1, 2, 3]
        source = DistanceVectorSource(space, queries)
        order = [
            sum(source.vector(i))
            for i in metric_skyline_cursor(tree, queries, vectors=source)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(order, order[1:]))

    def test_partial_consumption_is_cheaper(self):
        tree, space = build(n=300, seed=6)
        queries = [0, 100, 200]
        metric = space.metric
        before = metric.snapshot()
        cursor = metric_skyline_cursor(tree, queries)
        next(cursor)
        partial = metric.delta_since(before)
        list(cursor)
        total = metric.delta_since(before)
        assert partial < total


class TestSharedVectorCache:
    def test_vectors_cached_across_calls(self):
        tree, space = build(n=100, seed=7)
        queries = [0, 10, 20]
        source = DistanceVectorSource(space, queries)
        metric_skyline(tree, queries, vectors=source)
        metric = space.metric
        before = metric.snapshot()
        metric_skyline(tree, queries, vectors=source)
        assert metric.delta_since(before) == 0  # fully cached
