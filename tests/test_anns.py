"""MBM aggregate nearest-neighbor search vs brute force."""

import random

import pytest

from repro.anns import AggregateNNCursor, aggregate_nearest_neighbors
from repro.core.dominance import DistanceVectorSource
from repro.mtree import MTree
from repro.skyline import naive_metric_skyline
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


def build(n=200, seed=0, grid=None):
    space = make_vector_space(n, dims=3, seed=seed, grid=grid)
    buf = LRUBuffer(PageManager(), capacity=64)
    tree = MTree.build(space, buf, node_capacity=10, rng=random.Random(seed))
    return tree, space


def brute_ann(space, queries):
    source = DistanceVectorSource(space, queries)
    return sorted(
        (sum(source.vector(i)), i) for i in space.object_ids
    )


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_topk_matches_brute(self, seed):
        tree, space = build(n=150, seed=seed)
        queries = random.Random(seed).sample(range(150), 4)
        expected = [d for d, _i in brute_ann(space, queries)[:10]]
        got = [d for _i, d in aggregate_nearest_neighbors(tree, queries, 10)]
        assert got == pytest.approx(expected)

    def test_with_ties(self):
        tree, space = build(n=120, seed=8, grid=3)
        queries = [0, 30, 60]
        expected = [d for d, _i in brute_ann(space, queries)[:15]]
        got = [d for _i, d in aggregate_nearest_neighbors(tree, queries, 15)]
        assert got == pytest.approx(expected)

    def test_full_stream_sorted(self):
        tree, space = build(n=100, seed=9)
        stream = list(AggregateNNCursor(tree, [0, 50]))
        assert len(stream) == 100
        dists = [d for _i, d in stream]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))

    def test_single_query_reduces_to_nn(self):
        tree, space = build(n=100, seed=10)
        got = aggregate_nearest_neighbors(tree, [42], 1)
        assert got[0][0] == 42 or got[0][1] == 0.0

    def test_negative_h_rejected(self):
        tree, _ = build(n=20, seed=11)
        with pytest.raises(ValueError):
            aggregate_nearest_neighbors(tree, [0], -1)


class TestLemma3:
    """ANN(Q, 1) is always a metric-space skyline object."""

    @pytest.mark.parametrize("seed", range(5))
    def test_first_ann_in_skyline(self, seed):
        tree, space = build(n=120, seed=seed, grid=4 if seed % 2 else None)
        queries = random.Random(seed + 5).sample(range(120), 3)
        first, _adist = next(AggregateNNCursor(tree, queries))
        skyline = set(naive_metric_skyline(space, queries))
        assert first in skyline


class TestSkipAndSharing:
    def test_skip_excludes(self):
        tree, space = build(n=100, seed=12)
        queries = [0, 50]
        first, _d = next(AggregateNNCursor(tree, queries))
        second_stream = AggregateNNCursor(tree, queries, skip={first})
        second, _d2 = next(second_stream)
        assert second != first

    def test_skip_consistent_with_brute(self):
        tree, space = build(n=100, seed=13)
        queries = [1, 2, 3]
        ranking = brute_ann(space, queries)
        skip = {ranking[0][1], ranking[1][1]}
        got = aggregate_nearest_neighbors(tree, queries, 3, skip=skip)
        expected = [d for d, i in ranking if i not in skip][:3]
        assert [d for _i, d in got] == pytest.approx(expected)

    def test_vector_cache_shared(self):
        tree, space = build(n=100, seed=14)
        queries = [5, 6]
        source = DistanceVectorSource(space, queries)
        list(AggregateNNCursor(tree, queries, vectors=source))
        before = space.metric.snapshot()
        list(AggregateNNCursor(tree, queries, vectors=source))
        assert space.metric.delta_since(before) == 0

    def test_partial_consumption_is_cheaper(self):
        tree, space = build(n=300, seed=15)
        queries = [0, 100, 200]
        metric = space.metric
        before = metric.snapshot()
        cursor = AggregateNNCursor(tree, queries)
        next(cursor)
        partial = metric.delta_since(before)
        list(cursor)
        total = metric.delta_since(before)
        assert partial < total
