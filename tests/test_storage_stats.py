"""Unit tests for I/O statistics and the cost model."""

import pytest

from repro.storage.stats import (
    PAGE_FAULT_COST_SECONDS,
    CostModel,
    IOStats,
    QueryStats,
    Stopwatch,
)


class TestIOStats:
    def test_defaults_zero(self):
        stats = IOStats()
        assert stats.logical_accesses == 0
        assert stats.hit_ratio == 0.0

    def test_merge_accumulates(self):
        a = IOStats(logical_reads=2, page_faults=1, buffer_hits=1)
        b = IOStats(logical_reads=3, page_faults=2, buffer_hits=1)
        a.merge(b)
        assert a.logical_reads == 5
        assert a.page_faults == 3
        assert a.buffer_hits == 2

    def test_snapshot_is_independent(self):
        a = IOStats(logical_reads=1)
        snap = a.snapshot()
        a.logical_reads = 99
        assert snap.logical_reads == 1

    def test_delta_since(self):
        earlier = IOStats(page_faults=3, logical_writes=1)
        later = IOStats(page_faults=10, logical_writes=4)
        delta = later.delta_since(earlier)
        assert delta.page_faults == 7
        assert delta.logical_writes == 3

    def test_reset(self):
        stats = IOStats(logical_reads=5, page_faults=2)
        stats.reset()
        assert stats.logical_reads == 0
        assert stats.page_faults == 0


class TestCostModel:
    def test_paper_cost_is_8ms(self):
        assert PAGE_FAULT_COST_SECONDS == pytest.approx(0.008)

    def test_io_seconds(self):
        model = CostModel()
        assert model.io_seconds(IOStats(page_faults=125)) == pytest.approx(1.0)

    def test_custom_cost(self):
        model = CostModel(page_fault_cost=0.001)
        assert model.io_seconds(IOStats(page_faults=10)) == pytest.approx(0.01)


class TestQueryStats:
    def test_total_combines_cpu_and_io(self):
        stats = QueryStats(cpu_seconds=1.0)
        stats.io.page_faults = 125
        assert stats.io_seconds == pytest.approx(1.0)
        assert stats.total_seconds == pytest.approx(2.0)

    def test_merge(self):
        a = QueryStats(cpu_seconds=1.0, distance_computations=10)
        b = QueryStats(cpu_seconds=0.5, distance_computations=5)
        b.exact_score_computations = 2
        a.merge(b)
        assert a.cpu_seconds == pytest.approx(1.5)
        assert a.distance_computations == 15
        assert a.exact_score_computations == 2

    def test_scaled_averages(self):
        stats = QueryStats(cpu_seconds=3.0, distance_computations=9)
        stats.io.page_faults = 6
        avg = stats.scaled(3)
        assert avg.cpu_seconds == pytest.approx(1.0)
        assert avg.distance_computations == 3
        assert avg.io.page_faults == 2

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            QueryStats().scaled(0)


class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch()
        with watch:
            sum(range(10_000))
        assert watch.elapsed > 0

    def test_accumulates_across_uses(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            sum(range(10_000))
        assert watch.elapsed > first
