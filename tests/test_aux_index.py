"""The AuxB+-tree: records, retrieval logs, Lpos/tie bookkeeping."""

import pytest

from repro.core.aux_index import AuxBPlusTree, AuxRecord, RetrievalLog
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager


def make_aux(m=3, capacity=64):
    buf = LRUBuffer(PageManager(), capacity=capacity)
    return AuxBPlusTree(buf, m=m), buf


class TestAuxRecord:
    def test_fresh_record_shape(self):
        rec = AuxRecord(object_id=7, m=4)
        assert rec.dists == [None] * 4
        assert rec.lpos == [None] * 4
        assert not rec.is_complete
        assert not rec.is_common

    def test_vector_requires_completion(self):
        rec = AuxRecord(object_id=1, m=2)
        with pytest.raises(AssertionError):
            rec.vector()


class TestRetrievalLog:
    def test_append_returns_one_based_rank(self):
        aux, _ = make_aux()
        log = aux.logs[0]
        assert log.append(10, 0.5) == 1
        assert log.append(11, 0.6) == 2
        assert len(log) == 2

    def test_entry_random_access(self):
        aux, _ = make_aux()
        log = aux.logs[0]
        for i in range(500):
            log.append(i, float(i))
        assert log.entry(1) == (0, 0.0)
        assert log.entry(500) == (499, 499.0)
        assert log.entry(254) == (253, 253.0)

    def test_entry_out_of_range(self):
        aux, _ = make_aux()
        log = aux.logs[0]
        log.append(1, 1.0)
        with pytest.raises(IndexError):
            log.entry(0)
        with pytest.raises(IndexError):
            log.entry(2)

    def test_scan_backward_order(self):
        aux, _ = make_aux()
        log = aux.logs[0]
        for i in range(5):
            log.append(i, float(i))
        scanned = list(log.scan_backward())
        assert [rank for rank, _o, _d in scanned] == [5, 4, 3, 2, 1]

    def test_scan_backward_from_rank(self):
        aux, _ = make_aux()
        log = aux.logs[0]
        for i in range(5):
            log.append(i, float(i))
        scanned = list(log.scan_backward(from_rank=3))
        assert [o for _r, o, _d in scanned] == [2, 1, 0]

    def test_spans_multiple_pages(self):
        aux, buf = make_aux()
        log = aux.logs[0]
        for i in range(1000):
            log.append(i, float(i))
        assert len(log.file) > 1

    def test_drop_releases_pages(self):
        aux, buf = make_aux()
        log = aux.logs[1]
        for i in range(600):
            log.append(i, float(i))
        log.drop()
        assert len(log.file) == 0
        assert len(log) == 0


class TestNoteRetrieval:
    def test_basic_bookkeeping(self):
        aux, _ = make_aux(m=2)
        rec = aux.note_retrieval(0, 42, 1.5)
        assert rec.q_counter == 1
        assert rec.dists == [1.5, None]
        assert rec.lpos == [1, None]
        assert rec.max_rank == 1
        assert not rec.is_common
        assert len(aux) == 1

    def test_completion_marks_common(self):
        aux, _ = make_aux(m=2)
        aux.note_retrieval(0, 42, 1.5)
        rec = aux.note_retrieval(1, 42, 2.5)
        assert rec.is_common
        assert rec.vector() == (1.5, 2.5)

    def test_lpos_groups_equal_distances(self):
        aux, _ = make_aux(m=1)
        aux.note_retrieval(0, 1, 0.5)   # rank 1, lpos 1
        aux.note_retrieval(0, 2, 0.7)   # rank 2, lpos 2
        aux.note_retrieval(0, 3, 0.7)   # rank 3, lpos 2 (tie)
        aux.note_retrieval(0, 4, 0.7)   # rank 4, lpos 2 (tie)
        aux.note_retrieval(0, 5, 0.9)   # rank 5, lpos 5
        assert aux.get(2).lpos[0] == 2
        assert aux.get(3).lpos[0] == 2
        assert aux.get(4).lpos[0] == 2
        assert aux.get(5).lpos[0] == 5

    def test_max_rank_across_queries(self):
        aux, _ = make_aux(m=2)
        aux.note_retrieval(0, 9, 1.0)
        aux.note_retrieval(0, 8, 2.0)
        aux.note_retrieval(1, 9, 3.0)  # rank 1 from q1
        assert aux.get(9).max_rank == 1
        aux.note_retrieval(1, 7, 4.0)
        rec = aux.note_retrieval(0, 7, 5.0)  # rank 3 from q0
        assert rec.max_rank == 3

    def test_double_retrieval_same_query_rejected(self):
        aux, _ = make_aux(m=2)
        aux.note_retrieval(0, 1, 1.0)
        with pytest.raises(AssertionError):
            aux.note_retrieval(0, 1, 1.0)

    def test_unique_count_is_objects_not_retrievals(self):
        aux, _ = make_aux(m=3)
        aux.note_retrieval(0, 1, 1.0)
        aux.note_retrieval(1, 1, 1.0)
        aux.note_retrieval(2, 1, 1.0)
        aux.note_retrieval(0, 2, 2.0)
        assert len(aux) == 2


class TestRecords:
    def test_record_creates_once(self):
        aux, _ = make_aux()
        first = aux.record(5)
        second = aux.record(5)
        assert first is second
        assert len(aux) == 1

    def test_get_missing_is_none(self):
        aux, _ = make_aux()
        assert aux.get(999) is None
        assert 999 not in aux

    def test_records_iterates_in_id_order(self):
        aux, _ = make_aux()
        for object_id in [5, 1, 9, 3]:
            aux.record(object_id)
        assert [rec.object_id for rec in aux.records()] == [1, 3, 5, 9]

    def test_update_persists_mutation(self):
        aux, _ = make_aux()
        rec = aux.record(4)
        rec.q_counter = 7
        aux.update(rec)
        assert aux.get(4).q_counter == 7

    def test_drop_clears_everything(self):
        aux, buf = make_aux()
        for i in range(50):
            aux.note_retrieval(0, i, float(i))
        aux.drop()
        assert len(aux.logs[0]) == 0


class TestIOAccounting:
    def test_operations_charge_buffer(self):
        aux, buf = make_aux(capacity=4)
        before = buf.stats.logical_accesses
        for i in range(100):
            aux.note_retrieval(0, i, float(i))
        assert buf.stats.logical_accesses > before
