"""Unit tests of the epoch-validated LRU result cache."""

from __future__ import annotations

import pytest

from repro.service.cache import ResultCache

KEY_A = ((1, 2, 3), 5, "pba2")
KEY_B = ((4, 5), 3, "pba2")
KEY_C = ((4, 5), 3, "sba")


class TestLRUSemantics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(KEY_A, epoch=0) is None
        cache.put(KEY_A, epoch=0, value="answer")
        entry = cache.get(KEY_A, epoch=0)
        assert entry is not None and entry.value == "answer"
        assert cache.hits == 1 and cache.misses == 1

    def test_same_query_different_k_or_algorithm_are_distinct(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY_B, epoch=0, value="k3-pba2")
        assert cache.get(KEY_C, epoch=0) is None
        cache.put(KEY_C, epoch=0, value="k3-sba")
        assert cache.get(KEY_B, epoch=0).value == "k3-pba2"
        assert cache.get(KEY_C, epoch=0).value == "k3-sba"

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(KEY_A, 0, "a")
        cache.put(KEY_B, 0, "b")
        cache.get(KEY_A, 0)  # A is now most-recent
        cache.put(KEY_C, 0, "c")  # evicts B
        assert cache.get(KEY_B, 0) is None
        assert cache.get(KEY_A, 0).value == "a"
        assert cache.get(KEY_C, 0).value == "c"
        assert len(cache) == 2

    def test_put_overwrites(self):
        cache = ResultCache(capacity=2)
        cache.put(KEY_A, 0, "old")
        cache.put(KEY_A, 0, "new")
        assert cache.get(KEY_A, 0).value == "new"
        assert len(cache) == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(KEY_A, 0, "a")
        assert cache.get(KEY_A, 0) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)


class TestEpochValidation:
    def test_stale_epoch_is_a_miss_and_evicts(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY_A, epoch=3, value="old world")
        assert cache.get(KEY_A, epoch=4) is None
        assert cache.stale_evictions == 1
        # the corpse is gone, not resurrectable at the old epoch
        assert cache.get(KEY_A, epoch=3) is None

    def test_flush_clears_everything(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY_A, 0, "a")
        cache.put(KEY_B, 0, "b")
        cache.flush()
        assert len(cache) == 0
        assert cache.flushes == 1

    def test_attach_flushes_on_engine_writes(self, small_engine):
        cache = ResultCache(capacity=4)
        detach = cache.attach(small_engine)
        cache.put(KEY_A, small_engine.epoch, "a")
        payload = small_engine.space.payload(0)
        small_engine.insert_object(payload)
        assert len(cache) == 0, "write subscription must flush the cache"
        # after detaching, writes no longer flush — but the epoch
        # check still rejects the stale entry (belt and braces).
        detach()
        stale_epoch = small_engine.epoch
        cache.put(KEY_A, stale_epoch, "b")
        small_engine.insert_object(payload)
        assert len(cache) == 1
        assert cache.get(KEY_A, small_engine.epoch) is None

    def test_snapshot_shape(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY_A, 0, "a")
        cache.get(KEY_A, 0)
        cache.get(KEY_B, 0)
        snap = cache.snapshot()
        assert snap["size"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)


class TestPinning:
    def test_pinned_key_survives_flush(self):
        cache = ResultCache(capacity=4)
        cache.pin(KEY_A)
        cache.put(KEY_A, 0, "standing")
        cache.put(KEY_B, 0, "one-shot")
        cache.flush()
        assert cache.get(KEY_A, 0).value == "standing"
        assert cache.get(KEY_B, 0) is None

    def test_unpin_drops_the_entry(self):
        cache = ResultCache(capacity=4)
        cache.pin(KEY_A)
        cache.put(KEY_A, 0, "standing")
        cache.unpin(KEY_A)
        # without a maintainer refreshing it, keeping the entry would
        # strand it stale-but-resident after the next write.
        assert cache.get(KEY_A, 0) is None
        cache.unpin(KEY_A)  # idempotent

    def test_refresh_counts_separately_from_put(self):
        cache = ResultCache(capacity=4)
        cache.pin(KEY_A)
        cache.refresh(KEY_A, 1, "epoch1")
        cache.refresh(KEY_A, 2, "epoch2")
        assert cache.get(KEY_A, 2).value == "epoch2"
        snap = cache.snapshot()
        assert snap["refreshes"] == 2
        assert snap["pinned"] == 1

    def test_refresh_respects_capacity_zero(self):
        cache = ResultCache(capacity=0)
        cache.pin(KEY_A)
        cache.refresh(KEY_A, 0, "a")
        assert cache.get(KEY_A, 0) is None

    def test_eviction_walks_past_pinned_keys(self):
        cache = ResultCache(capacity=2)
        cache.pin(KEY_A)
        cache.put(KEY_A, 0, "pinned")  # oldest, but protected
        cache.put(KEY_B, 0, "b")
        cache.put(KEY_C, 0, "c")  # evicts B (the LRU unpinned key)
        assert cache.get(KEY_A, 0).value == "pinned"
        assert cache.get(KEY_B, 0) is None
        assert cache.get(KEY_C, 0).value == "c"

    def test_all_pinned_may_exceed_capacity(self):
        cache = ResultCache(capacity=1)
        cache.pin(KEY_A)
        cache.pin(KEY_B)
        cache.put(KEY_A, 0, "a")
        cache.put(KEY_B, 0, "b")
        assert len(cache) == 2  # pinned entries are never sacrificed
        assert cache.get(KEY_A, 0).value == "a"
        assert cache.get(KEY_B, 0).value == "b"

    def test_stale_pinned_entry_still_misses(self):
        cache = ResultCache(capacity=4)
        cache.pin(KEY_A)
        cache.refresh(KEY_A, 3, "old world")
        # a missed refresh degrades to a miss, never a stale answer.
        assert cache.get(KEY_A, 4) is None
        assert cache.stale_evictions == 1
