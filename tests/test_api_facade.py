"""repro.api: the facade, canonical kwargs and deprecation aliases."""

import random
import warnings

import numpy as np
import pytest

from repro import api
from repro.api import (
    EuclideanMetric,
    MetricSpace,
    Query,
    Result,
    TopKDominatingEngine,
    open_engine,
    run,
)
from repro.core.pba import PBA2


def _space(n=60, seed=0):
    rng = np.random.default_rng(seed)
    return MetricSpace(list(rng.random((n, 3))), EuclideanMetric())


@pytest.fixture(scope="module")
def engine():
    return open_engine(_space(), seed=0)


class TestOpenEngine:
    def test_matches_direct_construction_exactly(self):
        """open_engine(seed=s) is the one canonical recipe: same tree,
        same counters as the boilerplate it replaced."""
        direct = TopKDominatingEngine(
            _space(), rng=random.Random(7)
        )
        facade = open_engine(_space(), seed=7)
        queries = [3, 17, 40]
        a, a_stats = direct.top_k_dominating(queries, 5)
        b, b_stats = facade.top_k_dominating(queries, 5)
        assert [(r.object_id, r.score) for r in a] == [
            (r.object_id, r.score) for r in b
        ]
        assert (
            a_stats.distance_computations == b_stats.distance_computations
        )
        assert a_stats.io.page_faults == b_stats.io.page_faults

    def test_rng_keyword_is_deprecated_alias(self):
        with pytest.warns(DeprecationWarning, match="'rng'.*'seed'"):
            engine = open_engine(_space(), rng=random.Random(7))
        reference = open_engine(_space(), seed=7)
        a, _ = engine.top_k_dominating([1, 2], 3)
        b, _ = reference.top_k_dominating([1, 2], 3)
        assert [r.object_id for r in a] == [r.object_id for r in b]

    def test_forwards_index_kind(self):
        engine = open_engine(_space(), seed=1, index="vptree")
        assert engine.index_kind == "vptree"


class TestQueryResult:
    def test_query_normalises(self):
        q = Query(query_ids=[4, 2], k=3, algorithm="PBA2")
        assert q.query_ids == (4, 2)
        assert q.algorithm == "pba2"
        assert q.m == 2
        hash(q)  # usable as a cache key

    def test_query_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            Query(query_ids=(1,), k=1, algorithm="nope")

    def test_run_equals_engine_call(self, engine):
        result = run(engine, Query(query_ids=(3, 17), k=4))
        direct, _stats = engine.top_k_dominating([3, 17], 4)
        assert isinstance(result, Result)
        assert list(result) == direct
        assert len(result) == 4
        assert result.object_ids == tuple(r.object_id for r in direct)
        assert result.stats.distance_computations >= 0


class TestDeprecatedAliases:
    def test_top_k_alias_on_engine(self, engine):
        canonical, _ = engine.top_k_dominating([1, 2], 4)
        with pytest.warns(DeprecationWarning, match="'top_k'"):
            aliased, _ = engine.top_k_dominating([1, 2], top_k=4)
        assert [r.object_id for r in aliased] == [
            r.object_id for r in canonical
        ]

    def test_top_k_alias_on_stream(self, engine):
        with pytest.warns(DeprecationWarning, match="'top_k'"):
            items = list(engine.stream([1, 2], top_k=2))
        assert len(items) == 2

    def test_both_spellings_is_an_error(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="both"):
                engine.top_k_dominating([1, 2], 4, top_k=4)

    def test_k_still_required(self, engine):
        with pytest.raises(TypeError, match="missing required argument"):
            engine.top_k_dominating([1, 2])

    def test_make_algorithm_name_alias(self, engine):
        with pytest.warns(DeprecationWarning, match="'name'"):
            algo = engine.make_algorithm(name="pba2")
        assert isinstance(algo, PBA2)

    def test_algorithm_class_selector_deprecated(self, engine):
        with pytest.warns(DeprecationWarning, match="registry name"):
            results, _ = engine.top_k_dominating([1, 2], 3, algorithm=PBA2)
        canonical, _ = engine.top_k_dominating([1, 2], 3, algorithm="pba2")
        assert [r.object_id for r in results] == [
            r.object_id for r in canonical
        ]

    def test_canonical_spellings_do_not_warn(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.top_k_dominating([1, 2], 3, algorithm="pba2")
            list(engine.stream([1, 2], 2))
            engine.make_algorithm("sba")
            open_engine(_space(20), seed=0)

    def test_service_top_k_alias(self):
        from repro.service import QueryService, ServiceConfig

        service = QueryService(
            open_engine(_space(40), seed=0),
            ServiceConfig(workers=1),
        )
        try:
            canonical = service.query_sync([1, 2], 3)
            with pytest.warns(DeprecationWarning, match="'top_k'"):
                aliased = service.query_sync([1, 2], top_k=3)
            assert aliased.results == canonical.results
        finally:
            service.close()


class TestSurfaceDeclaration:
    def test_all_exports_exist_and_are_sorted(self):
        assert api.__all__ == sorted(api.__all__)
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_covers_engine_workflow(self):
        """The documented supported surface is importable from one place."""
        for name in (
            "open_engine",
            "run",
            "Query",
            "Result",
            "Metric",
            "MetricSpace",
            "TopKDominatingEngine",
            "ALGORITHMS",
            "pairwise_distances",
        ):
            assert name in api.__all__
