"""All algorithms over non-vector metrics (strings, graphs).

The paper's whole point is that no vector representation is needed —
these tests run the complete algorithm suite over edit-distance and
shortest-path metric spaces and check against the oracle.
"""

import random

import pytest

from repro import (
    EditDistanceMetric,
    Graph,
    MetricSpace,
    ShortestPathMetric,
    TopKDominatingEngine,
)
from repro.core.brute_force import brute_force_scores

ALGORITHMS = ("sba", "aba", "pba1", "pba2")


@pytest.fixture(scope="module")
def string_engine():
    rng = random.Random(5)
    base = "ACGTTGCAACGT"
    pool = []
    for _ in range(90):
        chars = list(base)
        for _ in range(rng.randint(0, 5)):
            chars[rng.randrange(len(chars))] = rng.choice("ACGT")
        pool.append("".join(chars))
    space = MetricSpace(pool, EditDistanceMetric(), name="strings")
    return TopKDominatingEngine(space, rng=random.Random(5))


@pytest.fixture(scope="module")
def graph_engine():
    rng = random.Random(6)
    graph = Graph(80)
    # a connected random geometric-ish graph.
    for node in range(1, 80):
        graph.add_edge(node, rng.randrange(node), rng.uniform(0.5, 2.0))
    for _ in range(60):
        u, v = rng.randrange(80), rng.randrange(80)
        if u != v:
            graph.add_edge(u, v, rng.uniform(0.5, 3.0))
    space = MetricSpace(
        list(range(80)), ShortestPathMetric(graph), name="graph"
    )
    return TopKDominatingEngine(space, rng=random.Random(6))


class TestEditDistanceSpace:
    """Edit distance produces integer distances: massive ties."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_oracle(self, string_engine, algorithm):
        queries = [0, 45, 89]
        truth = brute_force_scores(string_engine.space, queries)
        results, _ = string_engine.top_k_dominating(
            queries, 6, algorithm=algorithm
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6], algorithm

    def test_single_query(self, string_engine):
        truth = brute_force_scores(string_engine.space, [10])
        results, _ = string_engine.top_k_dominating(
            [10], 4, algorithm="pba2"
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:4]


class TestGraphSpace:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_oracle(self, graph_engine, algorithm):
        queries = [2, 40, 78]
        truth = brute_force_scores(graph_engine.space, queries)
        results, _ = graph_engine.top_k_dominating(
            queries, 6, algorithm=algorithm
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6], algorithm

    def test_distance_counter_sees_graph_metric(self, graph_engine):
        metric = graph_engine.counting_metric
        before = metric.snapshot()
        graph_engine.top_k_dominating([0, 40], 3, algorithm="pba2")
        assert metric.delta_since(before) > 0

    def test_vptree_on_graph_space(self):
        rng = random.Random(7)
        graph = Graph(60)
        for node in range(1, 60):
            graph.add_edge(node, rng.randrange(node), rng.uniform(0.5, 2))
        space = MetricSpace(
            list(range(60)), ShortestPathMetric(graph), name="g2"
        )
        engine = TopKDominatingEngine(
            space, rng=random.Random(7), index="vptree"
        )
        truth = brute_force_scores(engine.space, [0, 30])
        results, _ = engine.top_k_dominating([0, 30], 5, algorithm="pba2")
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]
