"""Hypothesis: all four algorithms match brute force on arbitrary
random instances — the repository's strongest single guarantee."""

import random

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro import MetricSpace, TopKDominatingEngine
from repro.core.brute_force import brute_force_scores
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric, ManhattanMetric


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=8, max_value=50))
    dims = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    grid = draw(st.sampled_from([None, 2, 3, 5]))
    m = draw(st.integers(min_value=1, max_value=min(5, n)))
    k = draw(st.integers(min_value=1, max_value=n))
    metric = draw(st.sampled_from(["l1", "l2"]))
    rng = np.random.default_rng(seed)
    points = rng.random((n, dims))
    if grid is not None:
        points = np.round(points * grid) / grid
    space = MetricSpace(
        list(points),
        CountingMetric(
            ManhattanMetric() if metric == "l1" else EuclideanMetric()
        ),
    )
    queries = random.Random(seed).sample(range(n), m)
    return space, queries, k, seed


@settings(max_examples=25, deadline=None)
@given(instance=instances())
def test_all_algorithms_match_brute_force(instance):
    space, queries, k, seed = instance
    engine = TopKDominatingEngine(
        space, index_options={"node_capacity": 8}, rng=random.Random(seed)
    )
    truth = brute_force_scores(engine.space, queries)
    expected = sorted(truth.values(), reverse=True)[:k]
    for algorithm in ("sba", "aba", "pba1", "pba2"):
        results, _stats = engine.top_k_dominating(
            queries, k, algorithm=algorithm
        )
        assert [r.score for r in results] == expected, algorithm
        for item in results:
            assert truth[item.object_id] == item.score, algorithm


@settings(max_examples=15, deadline=None)
@given(instance=instances())
def test_progressive_prefix_property(instance):
    """Stopping a progressive run at i < k yields exactly the first i
    results of the full run (score-wise)."""
    space, queries, k, seed = instance
    engine = TopKDominatingEngine(
        space, index_options={"node_capacity": 8}, rng=random.Random(seed)
    )
    for algorithm in ("pba1", "pba2"):
        full, _ = engine.top_k_dominating(queries, k, algorithm=algorithm)
        prefix_len = max(1, k // 2)
        gen = engine.stream(queries, k, algorithm=algorithm)
        prefix = []
        for item in gen:
            prefix.append(item)
            if len(prefix) == prefix_len:
                gen.close()
                break
        assert [r.score for r in prefix] == [
            r.score for r in full[:prefix_len]
        ]
