"""Unit tests for the redo-only WAL: framing, torn tails, fsync policy."""

from __future__ import annotations

import os

import pytest

from repro.recovery.wal import (
    FRAME,
    MAGIC,
    WalError,
    WriteAheadLog,
    read_wal,
    truncate_wal,
)


def make_wal(tmp_path, **kwargs):
    return WriteAheadLog(str(tmp_path / "wal.log"), **kwargs)


class CountingFsync:
    def __init__(self):
        self.calls = 0

    def __call__(self, fd):
        self.calls += 1
        os.fsync(fd)


class TestFraming:
    def test_records_round_trip_in_order(self, tmp_path):
        wal = make_wal(tmp_path)
        records = [("commit", {"epoch": i, "op": "insert"}) for i in range(5)]
        for record in records:
            wal.append(record, commit=True)
        wal.close()
        read, good, torn = read_wal(wal.path)
        assert read == records
        assert torn == 0
        assert good == os.path.getsize(wal.path)

    def test_fresh_file_starts_with_magic(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.close()
        with open(wal.path, "rb") as handle:
            assert handle.read() == MAGIC

    def test_missing_file_reads_empty(self, tmp_path):
        records, good, torn = read_wal(str(tmp_path / "nope.log"))
        assert (records, good, torn) == ([], 0, 0)

    def test_reopen_appends_after_existing_records(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(("commit", {"epoch": 1}), commit=True)
        wal.close()
        wal = make_wal(tmp_path)
        wal.append(("commit", {"epoch": 2}), commit=True)
        wal.close()
        records, _good, _torn = read_wal(wal.path)
        assert [r[1]["epoch"] for r in records] == [1, 2]


class TestTornTails:
    def _write_then_tear(self, tmp_path, tear_bytes):
        wal = make_wal(tmp_path)
        wal.append(("commit", {"epoch": 1}), commit=True)
        wal.append(("commit", {"epoch": 2}), commit=True)
        wal.close()
        good_size = os.path.getsize(wal.path)
        with open(wal.path, "ab") as handle:
            handle.write(tear_bytes)
        return wal.path, good_size

    def test_trailing_garbage_is_detected_and_measured(self, tmp_path):
        path, good_size = self._write_then_tear(tmp_path, b"\x07" * 11)
        records, good, torn = read_wal(path)
        assert len(records) == 2
        assert good == good_size
        assert torn == 11

    def test_short_frame_header_stops_the_scan(self, tmp_path):
        path, good_size = self._write_then_tear(tmp_path, b"\x01")
        _records, good, torn = read_wal(path)
        assert good == good_size and torn == 1

    def test_corrupt_crc_stops_at_the_bad_record(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(("commit", {"epoch": 1}), commit=True)
        wal.append(("commit", {"epoch": 2}), commit=True)
        wal.close()
        # flip one byte inside the LAST record's payload.
        size = os.path.getsize(wal.path)
        with open(wal.path, "r+b") as handle:
            handle.seek(size - 1)
            last = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([last[0] ^ 0xFF]))
        records, _good, torn = read_wal(wal.path)
        assert [r[1]["epoch"] for r in records] == [1]
        assert torn > 0

    def test_truncate_wal_leaves_a_clean_log(self, tmp_path):
        path, _good_size = self._write_then_tear(tmp_path, b"junk")
        _records, good, torn = read_wal(path)
        assert torn == 4
        truncate_wal(path, good)
        records, _good, torn = read_wal(path)
        assert torn == 0
        assert [r[1]["epoch"] for r in records] == [1, 2]
        # and the truncated log accepts appends again.
        wal = WriteAheadLog(path)
        wal.append(("commit", {"epoch": 3}), commit=True)
        wal.close()
        records, _good, _torn = read_wal(path)
        assert [r[1]["epoch"] for r in records] == [1, 2, 3]

    def test_torn_magic_reads_as_all_torn_and_rewrites_clean(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as handle:
            handle.write(MAGIC[:4])  # the file creation itself tore
        records, good, torn = read_wal(path)
        assert records == [] and good == 0 and torn == 4
        truncate_wal(path, good)
        with open(path, "rb") as handle:
            assert handle.read() == MAGIC


class TestFsyncPolicies:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            make_wal(tmp_path, fsync_policy="yolo")

    def test_group_size_must_be_positive(self, tmp_path):
        with pytest.raises(WalError):
            make_wal(tmp_path, group_size=0)

    def test_always_syncs_every_append(self, tmp_path):
        fsync = CountingFsync()
        wal = make_wal(tmp_path, fsync_policy="always", fsync=fsync)
        for i in range(3):
            wal.append(("page", "idx", "write", i, b""))
        assert wal.syncs == 3
        assert fsync.calls == 3

    def test_commit_syncs_only_at_commit_records(self, tmp_path):
        fsync = CountingFsync()
        wal = make_wal(tmp_path, fsync_policy="commit", fsync=fsync)
        wal.append(("page", "idx", "write", 1, b""))
        wal.append(("page", "idx", "write", 2, b""))
        assert fsync.calls == 0  # still buffered: group commit
        assert read_wal(wal.path)[0] == []
        wal.append(("commit", {"epoch": 1}), commit=True)
        assert fsync.calls == 1
        # the whole batch became durable at the commit boundary.
        assert len(read_wal(wal.path)[0]) == 3

    def test_batch_syncs_every_group_size_commits(self, tmp_path):
        fsync = CountingFsync()
        wal = make_wal(
            tmp_path, fsync_policy="batch", group_size=3, fsync=fsync
        )
        for i in range(7):
            wal.append(("commit", {"epoch": i}), commit=True)
        assert fsync.calls == 2  # after commits 3 and 6
        wal.flush()
        assert fsync.calls == 3

    def test_never_writes_but_never_syncs(self, tmp_path):
        fsync = CountingFsync()
        wal = make_wal(tmp_path, fsync_policy="never", fsync=fsync)
        wal.append(("commit", {"epoch": 1}), commit=True)
        assert fsync.calls == 0
        # the record still reached the OS (visible to a reader).
        assert len(read_wal(wal.path)[0]) == 1
        wal.flush()
        assert fsync.calls == 0

    def test_reset_truncates_to_empty_log(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(("commit", {"epoch": 1}), commit=True)
        wal.reset()
        assert read_wal(wal.path) == ([], len(MAGIC), 0)
        wal.append(("commit", {"epoch": 2}), commit=True)
        wal.close()
        records, _good, _torn = read_wal(wal.path)
        assert [r[1]["epoch"] for r in records] == [2]

    def test_snapshot_reports_counters(self, tmp_path):
        wal = make_wal(tmp_path, fsync_policy="commit")
        wal.append(("page", "idx", "write", 1, b""))
        wal.append(("commit", {"epoch": 1}), commit=True)
        snap = wal.snapshot()
        assert snap["records_appended"] == 2
        assert snap["commits_appended"] == 1
        assert snap["syncs"] == 1
        assert snap["fsync_policy"] == "commit"
        assert snap["pending_bytes"] == 0


def test_frame_is_fixed_width_length_plus_crc():
    # the on-disk contract the torn-tail scanner depends on.
    assert FRAME.size == 8
