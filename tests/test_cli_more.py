"""Additional CLI paths (charts, table selection, overrides)."""

import json

import pytest

from repro.bench.cli import main as cli_main


class TestCliCharts:
    def test_figure_with_charts(self, capsys):
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--charts",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ASCII rendering" in out
        assert "log scale" in out

    def test_table_run_no_charts_needed(self, capsys):
        code = cli_main(
            [
                "figures", "--table", "3", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--charts",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "ASCII rendering" not in out  # charts are figure-only


class TestCliOverrides:
    def test_n_and_repeats_override(self, capsys):
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "50", "--repeats", "1", "--datasets", "UNI",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n=50" in out

    def test_csv_export(self, capsys, tmp_path):
        out_path = tmp_path / "cells.csv"
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--csv", str(out_path),
            ]
        )
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines[0].startswith("dataset,algorithm")
        assert len(lines) > 1

    def test_multiple_exhibits(self, capsys, tmp_path):
        out_path = tmp_path / "cells.json"
        code = cli_main(
            [
                "figures", "--figure", "8", "--table", "3",
                "--profile", "smoke", "--n", "60", "--repeats", "1",
                "--datasets", "UNI", "--quiet", "--json", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Table 3" in out
        cells = json.loads(out_path.read_text())
        algorithms = {cell["algorithm"] for cell in cells}
        assert {"pba1", "pba2"} <= algorithms
