"""Additional CLI paths (charts, table selection, overrides)."""

import json

import pytest

from repro.bench.cli import main as cli_main


class TestCliCharts:
    def test_figure_with_charts(self, capsys):
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--charts",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ASCII rendering" in out
        assert "log scale" in out

    def test_table_run_no_charts_needed(self, capsys):
        code = cli_main(
            [
                "figures", "--table", "3", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--charts",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "ASCII rendering" not in out  # charts are figure-only


class TestCliOverrides:
    def test_n_and_repeats_override(self, capsys):
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "50", "--repeats", "1", "--datasets", "UNI",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n=50" in out

    def test_csv_export(self, capsys, tmp_path):
        out_path = tmp_path / "cells.csv"
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--csv", str(out_path),
            ]
        )
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines[0].startswith("dataset,algorithm")
        assert len(lines) > 1

    def test_multiple_exhibits(self, capsys, tmp_path):
        out_path = tmp_path / "cells.json"
        code = cli_main(
            [
                "figures", "--figure", "8", "--table", "3",
                "--profile", "smoke", "--n", "60", "--repeats", "1",
                "--datasets", "UNI", "--quiet", "--json", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Table 3" in out
        cells = json.loads(out_path.read_text())
        algorithms = {cell["algorithm"] for cell in cells}
        assert {"pba1", "pba2"} <= algorithms


class TestTraceCliDiagnostics:
    """repro-trace must answer a bad trace file with one diagnostic
    line and exit code 2, never a traceback (regression: an empty or
    truncated recording used to raise json.JSONDecodeError)."""

    @pytest.fixture(params=["summarize", "top"])
    def command(self, request):
        return request.param

    def _check(self, capsys, command, path, needle):
        from repro.obs.cli import main as trace_main

        assert trace_main([command, str(path)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro-trace: error:")
        assert needle in captured.err
        assert captured.err.count("\n") == 1

    def test_empty_trace_file(self, tmp_path, capsys, command):
        path = tmp_path / "empty.trace.json"
        path.write_text("")
        self._check(capsys, command, path, "empty trace file")

    def test_truncated_trace_file(self, tmp_path, capsys, command):
        path = tmp_path / "trunc.trace.json"
        path.write_text('{"format": "repro-trace/1", "spans": [{"na')
        self._check(capsys, command, path, "truncated or corrupt")

    def test_spans_missing(self, tmp_path, capsys, command):
        path = tmp_path / "nospans.trace.json"
        path.write_text(json.dumps({"format": "repro-trace/1"}))
        self._check(capsys, command, path, "no 'spans' list")

    def test_missing_file(self, tmp_path, capsys, command):
        from repro.obs.cli import main as trace_main

        assert trace_main([command, str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-trace: error:")
