"""Tracing must be provably free when disabled — and invisible when on.

The acceptance bar for permanently compiled-in instrumentation: with no
tracer configured, every algorithm must produce byte-identical results
and *identical* cost counters (distance computations, page faults) to a
build that never heard of tracing.  We can't diff against the pre-
instrumentation build, but we can assert the next-best property: the
counters of an untraced run equal those of a traced run of the same
fresh engine — the instrumentation itself never touches a page, a
metric or an RNG on either path.
"""

from __future__ import annotations

import pytest

from repro.obs.trace import Tracer
from tests.conftest import make_engine

ALGORITHMS = ["sba", "aba", "pba1", "pba2"]
QUERY = [3, 17, 42]
K = 8


def _run(traced: bool):
    """One cold query on a freshly built engine; returns comparables."""
    engine = make_engine(n=140, dims=3, seed=9)
    tracer = Tracer() if traced else None
    outcomes = {}
    for algorithm in ALGORITHMS:
        engine.buffers.clear()  # identical cold-cache start per algorithm
        if tracer is not None:
            with tracer.trace("neutrality"):
                results, stats = engine.top_k_dominating(
                    QUERY, K, algorithm=algorithm
                )
        else:
            results, stats = engine.top_k_dominating(
                QUERY, K, algorithm=algorithm
            )
        outcomes[algorithm] = {
            "results": [(r.object_id, r.score) for r in results],
            "distance_computations": stats.distance_computations,
            "page_faults": stats.io.page_faults,
            "buffer_hits": stats.io.buffer_hits,
            "exact_score_computations": stats.exact_score_computations,
        }
    return outcomes, tracer


def test_traced_equals_untraced_for_every_algorithm():
    untraced, _ = _run(traced=False)
    traced, tracer = _run(traced=True)
    assert traced == untraced
    assert len(tracer) > 0, "the traced run must actually record spans"


def test_distributed_neutrality():
    from repro.distributed.coordinator import DistributedTopK
    from tests.conftest import make_vector_space

    def run(traced: bool):
        space = make_vector_space(n=90, dims=3, seed=5)
        system = DistributedTopK(space, num_sites=3)
        tracer = Tracer() if traced else None
        if tracer is not None:
            with tracer.trace("neutrality"):
                results, stats = system.top_k(QUERY, K)
        else:
            results, stats = system.top_k(QUERY, K)
        return (
            [(r.object_id, r.score) for r in results],
            stats.total_messages,
            stats.candidate_vectors_shipped,
        )

    assert run(False) == run(True)


def test_profiler_off_by_default_is_inert():
    """An unstarted profiler is provably nothing: no thread, no samples."""
    import threading

    from repro.obs.perf.profiler import SamplingProfiler

    before = set(threading.enumerate())
    profiler = SamplingProfiler()
    assert not profiler.running
    assert set(threading.enumerate()) == before
    assert profiler.folded() == {}
    assert profiler.timeline() == []
    assert profiler.snapshot()["samples"] == 0


def test_profiler_neutrality_for_every_algorithm():
    """Results and cost counters are identical with the sampler running.

    The profiler only *reads* interpreter frames from its own thread;
    it must never touch a page, a metric or an RNG of the measured
    query — same bar as the tracer above.
    """
    from repro.obs.perf.profiler import SamplingProfiler

    unprofiled, _ = _run(traced=False)
    profiler = SamplingProfiler(interval=0.001)
    with profiler:
        profiled, _ = _run(traced=False)
    assert profiled == unprofiled
    assert not profiler.running


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_results_deterministic_under_tracer_reuse(algorithm):
    """One tracer across repeated queries must not perturb answers."""
    engine = make_engine(n=100, dims=3, seed=2)
    baseline, _ = engine.top_k_dominating(QUERY, K, algorithm=algorithm)
    tracer = Tracer()
    for _ in range(2):
        with tracer.trace("again"):
            results, _stats = engine.top_k_dominating(
                QUERY, K, algorithm=algorithm
            )
        assert [(r.object_id, r.score) for r in results] == [
            (r.object_id, r.score) for r in baseline
        ]
