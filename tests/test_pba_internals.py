"""White-box tests of PBA's internal machinery."""

import pytest

from repro import PruningConfig
from repro.core.pba import _PBARun, _PushbackCursor

from tests.conftest import make_engine


def make_run(n=120, seed=111, grid=None, m=3, k=5, config=None):
    engine = make_engine(n=n, seed=seed, grid=grid)
    queries = list(range(0, n, max(1, n // m)))[:m]
    run = _PBARun(
        engine.make_context(),
        queries,
        k,
        config=config or PruningConfig(),
        use_reverse_scan=True,
    )
    return engine, run


class TestPushbackCursor:
    def test_peek_does_not_consume(self):
        cursor = _PushbackCursor(iter([(1, 0.1), (2, 0.2)]))
        assert cursor.peek() == (1, 0.1)
        assert cursor.peek() == (1, 0.1)
        assert cursor.next() == (1, 0.1)
        assert cursor.next() == (2, 0.2)

    def test_exhaustion(self):
        cursor = _PushbackCursor(iter([(1, 0.1)]))
        cursor.next()
        assert cursor.peek() is None
        assert cursor.next() is None
        assert cursor.done

    def test_peek_on_empty(self):
        cursor = _PushbackCursor(iter([]))
        assert cursor.peek() is None
        assert cursor.done


class TestRetrievalMachinery:
    def test_fetch_registers_common_neighbors(self):
        _engine, run = make_run()
        assert run.fetch_next_common()
        assert len(run._heap) >= 1
        assert run.stats.objects_retrieved > 0

    def test_strict_counts_track_stream_tails(self):
        _engine, run = make_run(grid=3)
        for _ in range(5):
            run.fetch_next_common()
        for j in range(run.m):
            log = run.aux.logs[j]
            if len(log) == 0:
                continue
            # strict[j] must equal the number of entries strictly
            # closer than the last group's distance.
            _last_obj, last_dist = log.entry(len(log))
            strictly_closer = sum(
                1
                for rank in range(1, len(log) + 1)
                if log.entry(rank)[1] < last_dist
            )
            assert run._strict[j] == strictly_closer

    def test_future_bound_decreases_with_retrieval(self):
        _engine, run = make_run(n=200)
        run.fetch_next_common()
        early = run._future_bound()
        for _ in range(30):
            if not run.fetch_next_common():
                break
        late = run._future_bound()
        if early is not None and late is not None:
            assert late <= early

    def test_future_bound_none_when_exhausted(self):
        _engine, run = make_run(n=30, m=2, k=30)
        while run.fetch_next_common():
            pass
        assert run._future_bound() is None


class TestHeapMaintenance:
    def test_pop_valid_skips_discarded(self):
        _engine, run = make_run()
        run.fetch_next_common()
        run.fetch_next_common()
        # discard whatever is on top.
        entry = run._pop_valid()
        assert entry is not None
        _score, object_id, _exact = entry
        rec = run.aux.get(object_id)
        rec.discarded = True
        run.aux.update(rec)
        import heapq

        heapq.heappush(run._heap, (-999, 0, object_id, False))
        nxt = run._pop_valid()
        assert nxt is None or nxt[1] != object_id

    def test_estimates_never_understate_final_scores(self):
        """Every heap estimate must upper-bound the exact score later
        computed for the same object (the Lemma 5/6 contract)."""
        engine, run = make_run(n=150, grid=4, k=10)
        estimates = {}
        original_register = run._register

        def capture(rec):
            out = original_register(rec)
            if out:
                # the entry just pushed is (-estdom, ..., oid, False)
                for neg, _seq, oid, exact in run._heap:
                    if oid == rec.object_id and not exact:
                        estimates[oid] = -neg
            return out

        run._register = capture
        results = list(run.execute())
        run.close()
        from repro.core.brute_force import brute_force_scores

        truth = brute_force_scores(engine.space, run.query_ids)
        for object_id, estimate in estimates.items():
            assert truth[object_id] <= estimate, object_id

    def test_reported_objects_marked(self):
        _engine, run = make_run(k=3)
        results = list(run.execute())
        run.close()
        assert len(results) == 3
        assert {r.object_id for r in results} == run._reported


class TestGlobalPruningValue:
    def test_g_is_kth_best_minus_one(self):
        engine, run = make_run(n=150, k=5)
        results = list(run.execute())
        run.close()
        from repro.core.brute_force import brute_force_scores

        truth = brute_force_scores(engine.space, run.query_ids)
        kth_best_exact = sorted(
            (info.score for info in run._exact_info.values()),
            reverse=True,
        )[4]
        assert run.G == kth_best_exact - 1
        # and no reported score may fall at or below G.
        assert all(r.score > run.G for r in results)

    def test_g_monotone_during_run(self):
        _engine, run = make_run(n=150, k=4)
        history = []
        original = run._record_exact

        def spy(rec, outcome):
            original(rec, outcome)
            history.append(run.G)

        run._record_exact = spy
        list(run.execute())
        run.close()
        defined = [g for g in history if g is not None]
        assert defined == sorted(defined)
