"""Unit tests for the graph and shortest-path metric."""

import pytest

from repro.metric.graph import Graph, ShortestPathMetric, dijkstra


def path_graph(n=5, weight=1.0):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    return g


class TestGraph:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_add_node(self):
        g = Graph(2)
        node = g.add_node()
        assert node == 2
        assert g.num_nodes == 3

    def test_add_edge_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.5)
        assert dict(g.neighbors(0)) == {1: 2.5}
        assert dict(g.neighbors(1)) == {0: 2.5}
        assert g.num_edges == 1

    def test_parallel_edge_keeps_minimum(self):
        g = Graph(2)
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 9.0)
        assert dict(g.neighbors(0)) == {1: 2.0}
        assert g.num_edges == 1

    def test_self_loop_ignored(self):
        g = Graph(2)
        g.add_edge(1, 1, 3.0)
        assert g.num_edges == 0

    def test_negative_weight_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)

    def test_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)

    def test_degree_and_average(self):
        g = path_graph(4)
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.average_degree() == pytest.approx(2 * 3 / 4)

    def test_edges_iterated_once(self):
        g = path_graph(4)
        edges = list(g.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)


class TestDijkstra:
    def test_path_distances(self):
        g = path_graph(5, weight=2.0)
        dist = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 2.0, 2: 4.0, 3: 6.0, 4: 8.0}

    def test_early_termination_is_exact(self):
        g = path_graph(10)
        dist = dijkstra(g, 0, target=3)
        assert dist[3] == pytest.approx(3.0)

    def test_shortcut_wins(self):
        g = path_graph(4)
        g.add_edge(0, 3, 0.5)
        assert dijkstra(g, 0)[3] == pytest.approx(0.5)

    def test_cutoff_limits_exploration(self):
        g = path_graph(10)
        dist = dijkstra(g, 0, cutoff=3.0)
        assert 9 not in dist
        assert dist[3] == pytest.approx(3.0)

    def test_disconnected_component_absent(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        dist = dijkstra(g, 0)
        assert 3 not in dist


class TestShortestPathMetric:
    def test_basic_distance(self):
        metric = ShortestPathMetric(path_graph(5))
        assert metric(0, 4) == pytest.approx(4.0)
        assert metric(2, 2) == 0.0

    def test_symmetry(self):
        g = path_graph(6)
        g.add_edge(1, 4, 0.7)
        metric = ShortestPathMetric(g)
        assert metric(0, 5) == pytest.approx(metric(5, 0))

    def test_triangle_inequality_sampled(self):
        g = path_graph(8)
        g.add_edge(0, 5, 1.2)
        metric = ShortestPathMetric(g)
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert metric(a, b) <= metric(a, c) + metric(c, b) + 1e-9

    def test_disconnected_sentinel(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        metric = ShortestPathMetric(g, disconnected_distance=999.0)
        assert metric(0, 2) == 999.0

    def test_cache_reduces_dijkstra_runs(self):
        metric = ShortestPathMetric(path_graph(50), cache_sources=4)
        for target in range(1, 20):
            metric(0, target)
        assert metric.dijkstra_runs == 1

    def test_cache_symmetric_reuse(self):
        metric = ShortestPathMetric(path_graph(20), cache_sources=4)
        metric(3, 7)
        runs = metric.dijkstra_runs
        metric(9, 3)  # 3's row is cached; reused via symmetry
        assert metric.dijkstra_runs == runs

    def test_cache_disabled_runs_every_time(self):
        metric = ShortestPathMetric(path_graph(20), cache_sources=0)
        metric(0, 5)
        metric(0, 6)
        assert metric.dijkstra_runs == 2

    def test_clear_cache(self):
        metric = ShortestPathMetric(path_graph(20), cache_sources=4)
        metric(0, 5)
        metric.clear_cache()
        metric(0, 6)
        assert metric.dijkstra_runs == 2
