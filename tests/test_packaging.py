"""Packaging-level sanity: public surface imports and metadata."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.metric",
            "repro.mtree",
            "repro.vptree",
            "repro.btree",
            "repro.skyline",
            "repro.anns",
            "repro.storage",
            "repro.datasets",
            "repro.bench",
            "repro.distributed",
            "repro.streaming",
        ],
    )
    def test_subpackages_import(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} must be documented"

    def test_console_script_target(self):
        from repro.bench.cli import main

        assert callable(main)

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.core",
            "repro.metric",
            "repro.mtree",
            "repro.storage",
            "repro.datasets",
            "repro.distributed",
            "repro.streaming",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    module_name, name,
                )


class TestDocumentationPresence:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/architecture.md",
            "docs/algorithms.md",
            "docs/api.md",
        ],
    )
    def test_docs_exist_and_nonempty(self, path):
        import pathlib

        full = pathlib.Path(__file__).parent.parent / path
        assert full.exists(), path
        assert len(full.read_text()) > 500, path

    def test_every_public_module_has_docstring(self):
        import pathlib

        src = pathlib.Path(__file__).parent.parent / "src" / "repro"
        for module in src.rglob("*.py"):
            text = module.read_text()
            if module.name == "__main__.py":
                continue
            assert text.lstrip().startswith(('"""', "'''")), module
