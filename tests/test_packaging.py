"""Packaging-level sanity: public surface imports and metadata."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.metric",
            "repro.mtree",
            "repro.vptree",
            "repro.btree",
            "repro.skyline",
            "repro.anns",
            "repro.storage",
            "repro.datasets",
            "repro.bench",
            "repro.distributed",
            "repro.streaming",
            "repro.service",
        ],
    )
    def test_subpackages_import(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} must be documented"

    def test_console_script_target(self):
        from repro.bench.cli import main

        assert callable(main)

    def test_serve_console_script_target(self):
        from repro.service.loadgen import main

        assert callable(main)

    def test_console_scripts_declared(self):
        import pathlib

        pyproject = (
            pathlib.Path(__file__).parent.parent / "pyproject.toml"
        ).read_text()
        assert 'repro-bench = "repro.bench.cli:main"' in pyproject
        assert 'repro-serve = "repro.service.loadgen:main"' in pyproject

    def test_py_typed_marker_installed(self):
        import importlib.resources
        import pathlib

        # resolvable through the import system (how type checkers and
        # installed distributions see it) ...
        marker = importlib.resources.files("repro").joinpath("py.typed")
        assert marker.is_file(), "src/repro/py.typed must ship"
        # ... and declared as package data so wheels include it.
        pyproject = (
            pathlib.Path(__file__).parent.parent / "pyproject.toml"
        ).read_text()
        assert "py.typed" in pyproject, (
            "pyproject must declare py.typed package data"
        )

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.core",
            "repro.metric",
            "repro.mtree",
            "repro.storage",
            "repro.datasets",
            "repro.distributed",
            "repro.streaming",
            "repro.service",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    module_name, name,
                )


class TestDocumentationPresence:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/architecture.md",
            "docs/algorithms.md",
            "docs/api.md",
            "docs/serving.md",
        ],
    )
    def test_docs_exist_and_nonempty(self, path):
        import pathlib

        full = pathlib.Path(__file__).parent.parent / path
        assert full.exists(), path
        assert len(full.read_text()) > 500, path

    def test_every_public_module_has_docstring(self):
        import pathlib

        src = pathlib.Path(__file__).parent.parent / "src" / "repro"
        for module in src.rglob("*.py"):
            text = module.read_text()
            if module.name == "__main__.py":
                continue
            assert text.lstrip().startswith(('"""', "'''")), module
