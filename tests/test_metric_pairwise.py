"""The batch kernel's contract: ``pairwise`` equals per-pair distance.

The entire counter-bit-exactness argument of the batched hot paths
rests on two properties pinned here:

* for every registered metric, ``pairwise(q, cands)`` returns exactly
  (``==`` on floats, not approx) what the per-pair ``__call__`` loop
  returns, in either argument order and on edge cases (empty batches,
  NaN payloads, ragged candidates);
* :class:`CountingMetric` attributes exactly ``len(candidates)``
  distance computations per batch, minus identity (``is``) pairs —
  globally and per-thread (``local_count``).
"""

import random
import threading

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.metric import (
    ChebyshevMetric,
    CountingMetric,
    EditDistanceMetric,
    EuclideanMetric,
    Graph,
    LpMetric,
    ManhattanMetric,
    MetricSpace,
    ShortestPathMetric,
    WeightedEuclideanMetric,
    pairwise_distances,
)

#: every metric the library registers, with a payload generator.
def _vector_payloads(rng, n, dims):
    return [
        np.array([rng.uniform(-10, 10) for _ in range(dims)])
        for _ in range(n)
    ]


def _string_payloads(rng, n, _dims):
    alphabet = "ACGT"
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 12)))
        for _ in range(n)
    ]


def _graph_metric_and_payloads(rng, n):
    graph = Graph(num_nodes=n)
    for u in range(1, n):
        graph.add_edge(u, rng.randrange(u), weight=rng.uniform(0.5, 3.0))
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, weight=rng.uniform(0.5, 3.0))
    return ShortestPathMetric(graph), list(range(n))


VECTOR_METRICS = [
    ManhattanMetric(),
    EuclideanMetric(),
    ChebyshevMetric(),
    LpMetric(p=3.0),
    WeightedEuclideanMetric([0.1, 2.0, 0.0, 1.0]),
]


class TestVectorMetricsBitExact:
    @pytest.mark.parametrize(
        "metric", VECTOR_METRICS, ids=lambda m: m.name
    )
    def test_pairwise_equals_per_pair_exactly(self, metric):
        rng = random.Random(1234)
        query = np.array([rng.uniform(-10, 10) for _ in range(4)])
        candidates = _vector_payloads(rng, 97, 4)
        per_pair = [metric(query, c) for c in candidates]
        batch = metric.pairwise(query, candidates)
        assert batch.shape == (97,)
        assert batch.dtype == np.float64
        # bit-identical, not approximately equal: pruning decisions
        # (and hence the gated counters) depend on exact floats.
        assert per_pair == batch.tolist()

    @pytest.mark.parametrize(
        "metric", VECTOR_METRICS, ids=lambda m: m.name
    )
    def test_reflected_order_is_bit_identical(self, metric):
        rng = random.Random(99)
        query = np.array([rng.uniform(-10, 10) for _ in range(4)])
        candidates = _vector_payloads(rng, 31, 4)
        reflected = [metric(c, query) for c in candidates]
        assert reflected == metric.pairwise(
            query, candidates, reflect=True
        ).tolist()

    @pytest.mark.parametrize(
        "metric", VECTOR_METRICS, ids=lambda m: m.name
    )
    def test_empty_candidates(self, metric):
        query = np.array([1.0, 2.0, 3.0, 4.0])
        out = metric.pairwise(query, [])
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_nan_payloads_propagate_like_per_pair(self):
        metric = EuclideanMetric()
        query = np.array([0.0, float("nan")])
        candidates = [np.array([1.0, 1.0]), np.array([0.0, 0.0])]
        per_pair = [metric(query, c) for c in candidates]
        batch = metric.pairwise(query, candidates)
        assert all(np.isnan(v) for v in per_pair)
        assert np.isnan(batch).all()

    def test_ragged_batch_raises_like_per_pair(self):
        metric = EuclideanMetric()
        query = np.array([0.0, 0.0])
        bad = [np.array([1.0, 1.0]), np.array([1.0, 1.0, 1.0])]
        with pytest.raises(ValueError):
            [metric(query, c) for c in bad]
        with pytest.raises(ValueError):
            metric.pairwise(query, bad)

    def test_weighted_dimension_mismatch_raises(self):
        metric = WeightedEuclideanMetric([1.0, 1.0])
        with pytest.raises(ValueError):
            metric.pairwise(np.zeros(3), [np.zeros(3)])


class TestLoopFallbackMetrics:
    def test_edit_distance_matches_per_pair(self):
        metric = EditDistanceMetric()
        rng = random.Random(7)
        words = _string_payloads(rng, 40, None)
        query = "GATTACA"
        per_pair = [float(metric(query, w)) for w in words]
        assert pairwise_distances(metric, query, words).tolist() == per_pair

    def test_shortest_path_matches_and_preserves_call_order(self):
        rng = random.Random(11)
        metric, nodes = _graph_metric_and_payloads(rng, 30)
        query = 0
        candidates = nodes[1:]
        per_pair = [metric(query, c) for c in candidates]
        # fresh metric: the batched evaluation must replay the same
        # per-pair call sequence (same cache behaviour included).
        metric2, _ = _graph_metric_and_payloads(random.Random(11), 30)
        batch = pairwise_distances(metric2, query, candidates)
        assert batch.tolist() == per_pair
        assert metric2.dijkstra_runs == metric.dijkstra_runs

    def test_reflect_flips_argument_order(self):
        calls = []

        class Spy:
            name = "spy"

            def __call__(self, a, b):
                calls.append((a, b))
                return 0.0

        pairwise_distances(Spy(), "q", ["x", "y"], reflect=True)
        assert calls == [("x", "q"), ("y", "q")]
        calls.clear()
        pairwise_distances(Spy(), "q", ["x", "y"])
        assert calls == [("q", "x"), ("q", "y")]


@st.composite
def batches(draw):
    dims = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    metric = draw(
        st.sampled_from(["l1", "l2", "linf", "l3", "weighted", "edit"])
    )
    return dims, n, seed, metric


@settings(max_examples=60, deadline=None)
@given(batch=batches())
def test_property_pairwise_equals_per_pair(batch):
    """For every registered metric family: batched == per-pair, bitwise."""
    dims, n, seed, metric_name = batch
    rng = random.Random(seed)
    if metric_name == "edit":
        metric = EditDistanceMetric()
        query = _string_payloads(rng, 1, None)[0]
        candidates = _string_payloads(rng, n, None)
        per_pair = [float(metric(query, c)) for c in candidates]
        assert (
            pairwise_distances(metric, query, candidates).tolist()
            == per_pair
        )
        return
    metric = {
        "l1": ManhattanMetric(),
        "l2": EuclideanMetric(),
        "linf": ChebyshevMetric(),
        "l3": LpMetric(p=3.0),
        "weighted": WeightedEuclideanMetric(
            [rng.uniform(0, 2) for _ in range(dims)]
        ),
    }[metric_name]
    query = np.array([rng.uniform(-10, 10) for _ in range(dims)])
    candidates = _vector_payloads(rng, n, dims)
    per_pair = [metric(query, c) for c in candidates]
    assert metric.pairwise(query, candidates).tolist() == per_pair
    assert (
        metric.pairwise(query, candidates, reflect=True).tolist()
        == [metric(c, query) for c in candidates]
    )


class TestCountingAttribution:
    def test_batch_counts_exactly_len_candidates(self):
        counting = CountingMetric(EuclideanMetric())
        rng = random.Random(3)
        query = np.array([0.0, 0.0])
        candidates = _vector_payloads(rng, 23, 2)
        counting.pairwise(query, candidates)
        assert counting.count == 23
        assert counting.batches == 1
        counting.pairwise(query, candidates[:5])
        assert counting.count == 28
        assert counting.batches == 2

    def test_identity_pairs_uncounted_and_zero(self):
        counting = CountingMetric(EuclideanMetric())
        query = np.array([1.0, float("nan")])
        other = np.array([2.0, 2.0])
        out = counting.pairwise(query, [other, query, other, query])
        # the two identity slots: 0.0 without evaluation (per-pair
        # short-circuit semantics), even though the payload has a NaN.
        assert out[1] == 0.0 and out[3] == 0.0
        assert counting.count == 2

    def test_batch_matches_per_pair_counts(self):
        per_pair = CountingMetric(ManhattanMetric())
        batched = CountingMetric(ManhattanMetric())
        rng = random.Random(5)
        query = np.array([0.5, 0.5, 0.5])
        candidates = _vector_payloads(rng, 17, 3) + [query]
        loop = [per_pair(query, c) for c in candidates]
        batch = batched.pairwise(query, candidates)
        assert loop == batch.tolist()
        assert per_pair.count == batched.count == 17

    def test_empty_batch_counts_nothing(self):
        counting = CountingMetric(EuclideanMetric())
        out = counting.pairwise(np.zeros(2), [])
        assert out.shape == (0,)
        assert counting.count == 0
        assert counting.batches == 0

    def test_reset_zeroes_batches(self):
        counting = CountingMetric(EuclideanMetric())
        counting.pairwise(np.zeros(2), [np.ones(2)])
        counting.reset()
        assert counting.count == 0
        assert counting.batches == 0

    def test_thread_local_attribution(self):
        counting = CountingMetric(EuclideanMetric())
        counting.make_thread_safe()
        query = np.zeros(2)
        candidates = [np.ones(2)] * 7
        counting.pairwise(query, candidates)
        assert counting.local_count() == 7
        assert counting.local_batches() == 1

        seen = {}

        def worker():
            counting.pairwise(query, candidates[:3])
            counting.pairwise(query, candidates[:2])
            seen["count"] = counting.local_count()
            seen["batches"] = counting.local_batches()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # the worker thread sees only its own 5 evaluations / 2 batches;
        # this thread still sees its 7 / 1; the global sees all.
        assert seen == {"count": 5, "batches": 2}
        assert counting.local_count() == 7
        assert counting.local_batches() == 1
        assert counting.count == 12
        assert counting.batches == 3

    def test_space_pairwise_counts_through_counting_metric(self):
        rng = random.Random(8)
        payloads = _vector_payloads(rng, 20, 3)
        space = MetricSpace(payloads, CountingMetric(EuclideanMetric()))
        ids = list(range(1, 11))
        vec = space.pairwise(0, ids)
        assert vec.tolist() == [space.metric.inner(
            payloads[0], payloads[i]
        ) for i in ids]
        assert space.metric.count == 10
        # reflected and payload variants preserve counts too.
        space.metric.reset()
        space.pairwise_reflected(0, ids)
        assert space.metric.count == 10
        space.metric.reset()
        space.pairwise_to_payload(np.zeros(3), ids)
        assert space.metric.count == 10
        # identity ids are free, exactly like space.distance(i, i).
        space.metric.reset()
        space.pairwise(0, [0, 1, 2])
        assert space.metric.count == 2
