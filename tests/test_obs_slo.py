"""SLO engine tests: rules, burn rates, and the full alert lifecycle.

Everything here runs under an injectable clock — the synthetic latency
series is driven through a burn-rate threshold tick by tick, and the
alert's pending → firing → resolved transitions are pinned at exact
timestamps.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.monitor import TimeSeriesStore
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    SLO,
    Alert,
    AlertManager,
    BurnRateRule,
    CounterRatioSource,
    DriftRule,
    LatencySource,
    ThresholdRule,
    counter_sink,
    default_rules,
    load_slo_config,
    logging_sink,
)

BOUNDS = (0.01, 0.1, 1.0)


class Harness:
    """A registry + store + one synthetic workload under a fake clock."""

    def __init__(self):
        self.registry = MetricsRegistry()
        self.latency = self.registry.histogram(
            "request_latency_seconds", bounds=BOUNDS
        )
        self.received = self.registry.counter("received")
        self.failures = self.registry.counter("failures")
        self.t = 0.0
        self.store = TimeSeriesStore(self.registry, clock=lambda: self.t)

    def tick(self, good=0, bad=0, failures=0, dt=1.0):
        """Advance one second of traffic, then scrape."""
        self.t += dt
        for _ in range(good):
            self.latency.observe(0.005)
            self.received.inc()
        for _ in range(bad):
            self.latency.observe(0.5)
            self.received.inc()
        for _ in range(failures):
            self.failures.inc()
            self.received.inc()
        self.store.scrape(now=self.t)
        return self.t


class TestSLO:
    def test_error_budget(self):
        assert SLO("x", 0.99).error_budget == pytest.approx(0.01)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 2.0])
    def test_objective_bounds(self, objective):
        with pytest.raises(ValueError):
            SLO("x", objective)


class TestSources:
    def test_latency_source_bad_fraction(self):
        h = Harness()
        h.tick(good=9, bad=1)
        h.tick(good=9, bad=1)
        source = LatencySource("request_latency_seconds", 0.1)
        assert source.bad_fraction(h.store, 10.0, h.t) == pytest.approx(0.1)

    def test_latency_source_no_traffic_is_unknown(self):
        h = Harness()
        h.tick()
        h.tick()
        source = LatencySource("request_latency_seconds", 0.1)
        assert source.bad_fraction(h.store, 10.0, h.t) is None

    def test_counter_ratio_source(self):
        h = Harness()
        h.tick(good=8, failures=2)
        h.tick(good=8, failures=2)
        source = CounterRatioSource(bad=("instruments.failures",), total="instruments.received")
        assert source.bad_fraction(h.store, 10.0, h.t) == pytest.approx(0.2)

    def test_counter_ratio_zero_total_is_unknown(self):
        h = Harness()
        h.tick()
        h.tick()
        source = CounterRatioSource(bad=("instruments.failures",), total="instruments.received")
        assert source.bad_fraction(h.store, 10.0, h.t) is None


class TestBurnRateRule:
    def make_rule(self, for_seconds=0.0):
        return BurnRateRule(
            SLO("latency", 0.9),  # 10% error budget
            LatencySource("request_latency_seconds", 0.1),
            windows=[(10.0, 2.0, 2.0)],  # breach over 20% bad
            for_seconds=for_seconds,
        )

    def test_healthy_traffic_does_not_breach(self):
        h = Harness()
        rule = self.make_rule()
        for _ in range(5):
            h.tick(good=10)
        result = rule.evaluate(h.store, h.t)
        assert not result.breached

    def test_sustained_badness_breaches_both_windows(self):
        h = Harness()
        rule = self.make_rule()
        for _ in range(5):
            h.tick(good=2, bad=8)  # 80% bad = 8x burn > 2x
        result = rule.evaluate(h.store, h.t)
        assert result.breached
        assert result.value == pytest.approx(8.0)
        assert "burn" in result.detail

    def test_short_window_recovery_clears_fast(self):
        h = Harness()
        rule = self.make_rule()
        for _ in range(5):
            h.tick(good=2, bad=8)
        assert rule.evaluate(h.store, h.t).breached
        # traffic turns healthy: short window clears before long one
        for _ in range(3):
            h.tick(good=10)
        assert not rule.evaluate(h.store, h.t).breached

    def test_no_traffic_never_breaches(self):
        h = Harness()
        rule = self.make_rule()
        h.tick()
        h.tick()
        result = rule.evaluate(h.store, h.t)
        assert not result.breached
        assert result.value is None

    def test_window_validation(self):
        slo = SLO("x", 0.9)
        source = LatencySource("request_latency_seconds", 0.1)
        with pytest.raises(ValueError):
            BurnRateRule(slo, source, windows=[])
        with pytest.raises(ValueError):
            BurnRateRule(slo, source, windows=[(5.0, 10.0, 2.0)])
        with pytest.raises(ValueError):
            BurnRateRule(slo, source, windows=[(10.0, 5.0, 0.0)])


class TestThresholdRule:
    def test_latest_comparison(self):
        h = Harness()
        h.tick(good=3)
        rule = ThresholdRule("instruments.received", ">", 2.0)
        result = rule.evaluate(h.store, h.t)
        assert result.breached and result.value == 3.0

    def test_windowed_mean(self):
        h = Harness()
        h.tick(good=1)
        h.tick(good=1)
        h.tick(good=1)  # values 1, 2, 3 -> mean 2
        rule = ThresholdRule("instruments.received", ">", 2.5, window=10.0)
        assert not rule.evaluate(h.store, h.t).breached
        rule = ThresholdRule("instruments.received", ">", 1.5, window=10.0)
        assert rule.evaluate(h.store, h.t).breached

    def test_unknown_series_does_not_breach(self):
        h = Harness()
        h.tick()
        result = ThresholdRule("nope", ">", 0.0).evaluate(h.store, h.t)
        assert not result.breached and result.value is None

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            ThresholdRule("x", "!=", 1.0)


class TestDriftRule:
    def make_harness_with_cost(self):
        h = Harness()
        h.cost = h.registry.counter("cost")
        h.execs = h.registry.counter("execs")
        return h

    def drive(self, h, rounds, per_query):
        for _ in range(rounds):
            h.t += 1.0
            h.execs.inc(10)
            h.cost.inc(10 * per_query)
            h.store.scrape(now=h.t)

    def test_stable_cost_does_not_drift(self):
        h = self.make_harness_with_cost()
        rule = DriftRule(
            "instruments.cost", "instruments.execs",
            baseline_window=20.0, recent_window=3.0, max_ratio=1.5,
        )
        self.drive(h, rounds=10, per_query=100)
        result = rule.evaluate(h.store, h.t)
        assert not result.breached
        assert result.value == pytest.approx(1.0)

    def test_cost_regression_drifts(self):
        h = self.make_harness_with_cost()
        rule = DriftRule(
            "instruments.cost", "instruments.execs",
            baseline_window=20.0, recent_window=3.0, max_ratio=1.5,
        )
        self.drive(h, rounds=10, per_query=100)
        self.drive(h, rounds=3, per_query=400)  # index degraded
        result = rule.evaluate(h.store, h.t)
        assert result.breached
        assert result.value > 1.5
        assert "instruments.cost per instruments.execs" in result.detail

    def test_insufficient_events_is_unknown(self):
        h = self.make_harness_with_cost()
        rule = DriftRule(
            "instruments.cost", "instruments.execs",
            baseline_window=20.0, recent_window=3.0,
        )
        h.store.scrape(now=1.0)
        h.store.scrape(now=2.0)
        assert not rule.evaluate(h.store, 2.0).breached

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftRule("a", "b", baseline_window=5.0, recent_window=10.0)
        with pytest.raises(ValueError):
            DriftRule("a", "b", baseline_window=10.0, recent_window=5.0,
                      max_ratio=1.0)


class TestAlertLifecycle:
    """The satellite-mandated test: synthetic latency drives a
    burn-rate rule through pending → firing → resolved under an
    injectable clock."""

    def make(self, for_seconds=2.0):
        h = Harness()
        rule = BurnRateRule(
            SLO("latency", 0.9),
            LatencySource("request_latency_seconds", 0.1),
            windows=[(10.0, 2.0, 2.0)],
            for_seconds=for_seconds,
        )
        manager = AlertManager([rule])
        return h, rule, manager

    def test_full_lifecycle(self):
        h, rule, manager = self.make(for_seconds=2.0)
        # healthy warm-up: nothing active
        for _ in range(4):
            manager.evaluate(h.store, h.tick(good=10))
        assert manager.active() == []

        # breach: pending first (for_seconds not yet served)
        t_breach = h.tick(good=1, bad=9)
        manager.evaluate(h.store, t_breach)
        [alert] = manager.active()
        assert alert["state"] == "pending"
        assert alert["since"] == t_breach
        assert alert["fired_at"] is None

        # one more breached second: still pending (1.0 < 2.0)
        manager.evaluate(h.store, h.tick(good=1, bad=9))
        assert manager.active()[0]["state"] == "pending"

        # for_seconds served: firing, exactly one transition emitted
        t_fire = h.tick(good=1, bad=9)
        transitions = manager.evaluate(h.store, t_fire)
        assert [a.state for a in transitions] == ["firing"]
        [alert] = manager.active()
        assert alert["state"] == "firing"
        assert alert["fired_at"] == t_fire
        assert manager.fired == 1

        # continued breach: deduplicated — no second alert, no new fire
        manager.evaluate(h.store, h.tick(good=1, bad=9))
        assert manager.fired == 1
        assert len(manager.active()) == 1

        # recovery: the short window clears and the alert resolves
        resolved = []
        while not resolved:
            t = h.tick(good=10)
            resolved = manager.evaluate(h.store, t)
        assert [a.state for a in resolved] == ["resolved"]
        assert resolved[0].resolved_at == t
        assert manager.active() == []
        assert manager.resolved == 1

    def test_pending_clears_without_firing(self):
        h, rule, manager = self.make(for_seconds=5.0)
        for _ in range(3):
            manager.evaluate(h.store, h.tick(good=10))
        manager.evaluate(h.store, h.tick(good=1, bad=9))
        assert manager.active()[0]["state"] == "pending"
        for _ in range(4):
            manager.evaluate(h.store, h.tick(good=10))
        assert manager.active() == []
        assert manager.fired == 0  # a blip never fired

    def test_zero_for_seconds_fires_immediately(self):
        h, rule, manager = self.make(for_seconds=0.0)
        for _ in range(2):
            manager.evaluate(h.store, h.tick(good=10))
        transitions = manager.evaluate(h.store, h.tick(bad=10))
        assert [a.state for a in transitions] == ["firing"]

    def test_broken_rule_is_contained(self):
        class Exploding(ThresholdRule):
            def evaluate(self, store, now):
                raise RuntimeError("boom")

        h = Harness()
        manager = AlertManager([Exploding("x", ">", 0.0)])
        assert manager.evaluate(h.store, h.tick(good=1)) == []
        assert manager.active() == []

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            AlertManager(
                [ThresholdRule("a", ">", 0, name="dup"),
                 ThresholdRule("b", ">", 0, name="dup")]
            )

    def test_snapshot_shape(self):
        h, rule, manager = self.make()
        manager.evaluate(h.store, h.tick(good=10))
        snap = manager.snapshot()
        assert snap["evaluations"] == 1
        assert snap["active"] == []
        [state] = snap["rules"]
        assert state["name"] == rule.name
        assert state["state"] == "inactive"
        json.dumps(snap)  # plain types only


class TestSinks:
    def drive_to_firing(self, manager, h):
        for _ in range(2):
            manager.evaluate(h.store, h.tick(good=10))
        manager.evaluate(h.store, h.tick(bad=10))

    def make_rule(self):
        return BurnRateRule(
            SLO("latency", 0.9),
            LatencySource("request_latency_seconds", 0.1),
            windows=[(10.0, 2.0, 2.0)],
        )

    def test_callback_sink_sees_transitions(self):
        h = Harness()
        seen = []
        manager = AlertManager([self.make_rule()], sinks=[seen.append])
        self.drive_to_firing(manager, h)
        assert [a.state for a in seen] == ["firing"]
        for _ in range(5):
            manager.evaluate(h.store, h.tick(good=10))
        assert [a.state for a in seen] == ["firing", "resolved"]

    def test_counter_sink_labels(self):
        h = Harness()
        manager = AlertManager(
            [self.make_rule()], sinks=[counter_sink(h.registry)]
        )
        self.drive_to_firing(manager, h)
        instruments = h.registry.collect()["instruments"]
        key = 'monitor_alerts_total{severity="critical",state="firing"}'
        assert instruments[key] == 1.0

    def test_logging_sink_emits_records(self, caplog):
        h = Harness()
        manager = AlertManager(
            [self.make_rule()], sinks=[logging_sink()]
        )
        with caplog.at_level(logging.INFO, logger="repro.obs.monitor"):
            self.drive_to_firing(manager, h)
        [record] = caplog.records
        assert record.alert_state == "firing"
        assert record.severity == "critical"

    def test_raising_sink_is_dropped_not_fatal(self):
        def bad_sink(alert):
            raise RuntimeError("sink down")

        h = Harness()
        seen = []
        manager = AlertManager(
            [self.make_rule()], sinks=[bad_sink, seen.append]
        )
        self.drive_to_firing(manager, h)
        assert len(seen) == 1  # the good sink still ran


class TestConfigAndDefaults:
    def test_default_rules_names(self):
        names = [rule.name for rule in default_rules()]
        assert "latency-burn-rate" in names
        assert "error-burn-rate" in names
        assert "index-degradation" in names

    def test_default_rules_scale(self):
        [latency] = [
            r for r in default_rules(scale=0.1)
            if r.name == "latency-burn-rate"
        ]
        assert latency.windows[0][0] == pytest.approx(6.0)

    def test_load_slo_config_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "rules": [
                {"type": "burn_rate", "name": "lat", "severity": "critical",
                 "slo": {"name": "latency", "objective": 0.95},
                 "source": {"kind": "latency",
                            "histogram": "request_latency_seconds",
                            "threshold_seconds": 0.1},
                 "windows": [[10, 2, 2.0]], "for_seconds": 1},
                {"type": "threshold", "path": "received", "op": ">",
                 "value": 100},
                {"type": "drift", "numerator": "cost",
                 "denominator": "execs", "baseline_window": 60,
                 "recent_window": 5, "max_ratio": 2.0},
            ]
        }))
        rules = load_slo_config(str(path))
        assert [type(r).__name__ for r in rules] == [
            "BurnRateRule", "ThresholdRule", "DriftRule"
        ]
        assert rules[0].name == "lat"
        assert rules[0].for_seconds == 1.0

    def test_load_slo_config_errors_carry_index(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "rules": [{"type": "threshold", "path": "x", "op": ">",
                       "value": 1},
                      {"type": "wat"}]
        }))
        with pytest.raises(ValueError, match=r"rules\[1\]"):
            load_slo_config(str(path))

    def test_load_slo_config_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"rules": []}))
        with pytest.raises(ValueError, match="no rules"):
            load_slo_config(str(path))

    def test_load_slo_config_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="rules"):
            load_slo_config(str(path))

    def test_load_slo_config_missing_file_is_value_error(self, tmp_path):
        # repro-serve maps ValueError to a clean `error:` exit; a bare
        # FileNotFoundError would surface as a traceback instead.
        with pytest.raises(ValueError, match="nope.json"):
            load_slo_config(str(tmp_path / "nope.json"))

    def test_load_slo_config_invalid_json_is_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_slo_config(str(path))
