"""Property test: distributed execution equals centralized for
arbitrary partitionings."""

import random

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.brute_force import brute_force_scores
from repro.distributed import DistributedTopK
from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric


@st.composite
def partitioned_instances(draw):
    n = draw(st.integers(min_value=10, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=500))
    num_sites = draw(st.integers(min_value=1, max_value=4))
    # random (possibly skewed) partition of 0..n-1 into num_sites bins.
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_sites - 1),
            min_size=n,
            max_size=n,
        )
    )
    partitions = [[] for _ in range(num_sites)]
    for obj, site in enumerate(assignment):
        partitions[site].append(obj)
    # guarantee non-empty partitions by seeding each with one object.
    for site in range(num_sites):
        if not partitions[site]:
            donor = max(partitions, key=len)
            partitions[site].append(donor.pop())
    m = draw(st.integers(min_value=1, max_value=3))
    k = draw(st.integers(min_value=1, max_value=n))
    return n, seed, partitions, m, k


@settings(max_examples=20, deadline=None)
@given(instance=partitioned_instances())
def test_score_cache_exact_under_removals(instance):
    """The coordinator's cached global scores stay exact every round.

    The cache's correctness argument (coordinator.py): a removed top is
    dominated by nobody, so removing it cannot change any surviving
    object's score.  Check it the hard way — after every yielded
    result, brute-force rescore the *remaining* objects from scratch
    and demand the reported (cached) score and ranking match.
    """
    n, seed, partitions, m, k = instance
    rng = np.random.default_rng(seed)
    points = list(rng.random((n, 3)))
    space = MetricSpace(points, CountingMetric(EuclideanMetric()))
    queries = random.Random(seed).sample(range(n), m)
    system = DistributedTopK(
        space, partitions=partitions, rng=random.Random(seed)
    )
    remaining = set(range(n))
    for item, _stats in system.run(queries, k):
        truth = brute_force_scores(
            space, queries, universe=sorted(remaining)
        )
        assert truth[item.object_id] == item.score
        assert item.score == max(truth.values())
        remaining.discard(item.object_id)


@settings(max_examples=20, deadline=None)
@given(instance=partitioned_instances())
def test_distributed_equals_centralized(instance):
    n, seed, partitions, m, k = instance
    rng = np.random.default_rng(seed)
    points = list(rng.random((n, 3)))
    space = MetricSpace(points, CountingMetric(EuclideanMetric()))
    queries = random.Random(seed).sample(range(n), m)
    truth = brute_force_scores(space, queries)
    system = DistributedTopK(
        space, partitions=partitions, rng=random.Random(seed)
    )
    results, _stats = system.top_k(queries, k)
    assert [r.score for r in results] == sorted(
        truth.values(), reverse=True
    )[:k]
    for item in results:
        assert truth[item.object_id] == item.score
