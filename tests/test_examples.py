"""The example scripts must run end-to-end and tell a true story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "protein_network.py",
    "real_estate.py",
    "dna_sequences.py",
    "road_network.py",
    "extensions_tour.py",
]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip()


def test_quickstart_shows_agreement():
    output = run_example("quickstart.py")
    assert "algorithm agreement" in output
    # all four algorithms print the same score list.
    score_lines = [
        line.split("scores=")[1].split("]")[0]
        for line in output.splitlines()
        if "scores=" in line
    ]
    assert len(set(score_lines)) == 1


def test_real_estate_scale_invariance_holds():
    output = run_example("real_estate.py")
    assert "same domination scores? True" in output


def test_protein_network_pba_saves_distances():
    output = run_example("protein_network.py")
    counts = {}
    for line in output.splitlines():
        stripped = line.strip()
        if stripped.startswith(("aba", "pba2")):
            name, rest = stripped.split(":", 1)
            counts[name.strip()] = int(
                rest.strip().split(" ")[0]
            )
    assert counts["pba2"] < counts["aba"]


def test_dna_example_reports_costs():
    output = run_example("dna_sequences.py")
    assert "edit-distance evaluations" in output


def test_road_network_reports_progressiveness():
    output = run_example("road_network.py")
    assert "first result" in output


def test_extensions_tour_consistency_claims_hold():
    output = run_example("extensions_tour.py")
    assert "same answer as centralized? True" in output
    assert "same answer? True" in output
