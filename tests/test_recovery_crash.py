"""Process-death tests: SIGKILL a worker, verify recovery end-to-end.

These tests spawn real subprocesses via :mod:`repro.recovery.harness`
and let the armed crash point deliver a real ``SIGKILL`` — nothing
flushes, no ``atexit`` runs, exactly the failure durability exists
for.  The parent then recovers from the survivor files and audits the
result against brute force over the committed prefix.
"""

from __future__ import annotations

import signal

import pytest

from repro.faults.crashpoints import CRASH_POINTS
from repro.recovery import harness

WORKLOAD = dict(n=40, seed=11, ops=14, checkpoint_every=6)


def spawn(directory, site, crash_hit=1, fsync_policy="commit"):
    args = harness._build_parser().parse_args(
        [
            "sweep", "--workdir", str(directory), "--all",
            "--n", str(WORKLOAD["n"]),
            "--seed", str(WORKLOAD["seed"]),
            "--ops", str(WORKLOAD["ops"]),
            "--checkpoint-every", str(WORKLOAD["checkpoint_every"]),
        ]
    )
    args.crash_hit = crash_hit
    args.fsync_policy = fsync_policy
    return harness._spawn_worker(directory / "w", site, args)


@pytest.mark.parametrize("site", CRASH_POINTS)
def test_kill_at_every_crash_point_recovers_verified(site, tmp_path):
    proc = spawn(tmp_path, site)
    assert proc.returncode == -signal.SIGKILL, (
        f"worker survived {site}: rc={proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    report = harness.verify_directory(
        str(tmp_path / "w"),
        WORKLOAD["n"],
        WORKLOAD["seed"],
        WORKLOAD["ops"],
    )
    assert 0 <= report["epoch"] <= WORKLOAD["ops"]
    # verify_directory already asserted payloads, live set, probe
    # query and standing queries against brute force.


def test_uninterrupted_worker_completes_and_verifies(tmp_path):
    directory = tmp_path / "clean"
    rc = harness.main(
        [
            "worker", "--dir", str(directory),
            "--n", "40", "--seed", "11", "--ops", "14",
            "--checkpoint-every", "6",
        ]
    )
    assert rc == 0
    report = harness.verify_directory(str(directory), 40, 11, 14)
    assert report["epoch"] == 14
    assert report["standing_queries"] == 1


def test_torn_write_kill_truncates_the_torn_tail(tmp_path):
    # the one site that leaves physically torn bytes behind: recovery
    # must measure and cut them.
    proc = spawn(tmp_path, "wal.append.torn_write")
    assert proc.returncode == -signal.SIGKILL
    report = harness.verify_directory(
        str(tmp_path / "w"),
        WORKLOAD["n"],
        WORKLOAD["seed"],
        WORKLOAD["ops"],
    )
    assert report["torn_bytes_truncated"] > 0


def test_op_stream_is_a_pure_function_of_its_arguments():
    a = harness.op_stream(40, 11, 20)
    b = harness.op_stream(40, 11, 20)
    assert a == b
    assert a != harness.op_stream(40, 12, 20)
    protected = set(harness.standing_query(40, 11)[0])
    deleted = {arg for op, arg in a if op == "delete"}
    assert deleted, "the stream must exercise deletes"
    assert not deleted & protected, (
        "the standing query's objects must never be deleted"
    )


def test_committed_state_tracks_prefixes():
    inserted, live = harness.committed_state(40, 11, 20, 0)
    assert inserted == [] and live == list(range(40))
    inserted, live = harness.committed_state(40, 11, 20, 5)
    stream = harness.op_stream(40, 11, 20)
    expected_inserts = sum(1 for op, _ in stream[:5] if op == "insert")
    assert len(inserted) == expected_inserts
    assert len(live) == 40 + expected_inserts - (5 - expected_inserts)
    with pytest.raises(ValueError):
        harness.committed_state(40, 11, 20, 21)
