"""Explain must be a strict observer.

Two bars, mirroring ``tests/test_obs_neutrality.py``:

* **off ⇒ free** — with explain off nothing is collected and the only
  residue is one ``ContextVar.get`` per hook site (pinned indirectly:
  the unexplained path's counters cannot move, below);
* **on ⇒ invisible** — an explained run of the same fresh engine must
  produce byte-identical results and *identical* deterministic cost
  counters (distance computations, page faults, buffer hits, exact
  scores) to the plain run.  The collector reads in-memory ints and
  routes page gets through the very same buffer call the algorithm
  would have made; it never touches a page, a metric or an RNG of its
  own.
"""

from __future__ import annotations

import pytest

from repro.obs.trace import Tracer
from tests.conftest import make_engine

ALGORITHMS = ["sba", "aba", "pba1", "pba2"]
QUERY = [3, 17, 42]
K = 8


def _run(explained: bool):
    """One cold query per algorithm on a freshly built engine."""
    engine = make_engine(n=140, dims=3, seed=9)
    outcomes = {}
    plans = {}
    for algorithm in ALGORITHMS:
        engine.buffers.clear()  # identical cold-cache start per algorithm
        if explained:
            results, stats, plan = engine.explain(
                QUERY, K, algorithm=algorithm
            )
            plans[algorithm] = plan
        else:
            results, stats = engine.top_k_dominating(
                QUERY, K, algorithm=algorithm
            )
        outcomes[algorithm] = {
            "results": [(r.object_id, r.score) for r in results],
            "distance_computations": stats.distance_computations,
            "distance_batches": stats.distance_batches,
            "page_faults": stats.io.page_faults,
            "buffer_hits": stats.io.buffer_hits,
            "exact_score_computations": stats.exact_score_computations,
            "objects_retrieved": stats.objects_retrieved,
            "objects_pruned": stats.objects_pruned,
            "results_reported": stats.results_reported,
        }
    return outcomes, plans


def test_explained_equals_plain_for_every_algorithm():
    plain, _ = _run(explained=False)
    explained, plans = _run(explained=True)
    assert explained == plain
    for algorithm, plan in plans.items():
        assert plan.funnel, f"{algorithm}: explained run built no funnel"


def test_explain_neutral_under_an_ambient_tracer():
    """explain() inside an existing trace joins it without perturbing
    counters — the service's traced request path does exactly this."""
    plain, _ = _run(explained=False)

    engine = make_engine(n=140, dims=3, seed=9)
    tracer = Tracer()
    outcomes = {}
    for algorithm in ALGORITHMS:
        engine.buffers.clear()
        with tracer.trace("request"):
            results, stats, plan = engine.explain(
                QUERY, K, algorithm=algorithm
            )
        outcomes[algorithm] = {
            "results": [(r.object_id, r.score) for r in results],
            "distance_computations": stats.distance_computations,
            "distance_batches": stats.distance_batches,
            "page_faults": stats.io.page_faults,
            "buffer_hits": stats.io.buffer_hits,
            "exact_score_computations": stats.exact_score_computations,
            "objects_retrieved": stats.objects_retrieved,
            "objects_pruned": stats.objects_pruned,
            "results_reported": stats.results_reported,
        }
        assert plan.spans, "plan must carry the ambient tracer's spans"
    assert outcomes == plain


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_plain_run_after_explained_run_is_undisturbed(algorithm):
    """No explain state leaks across calls on a shared engine."""
    engine = make_engine(n=100, dims=3, seed=2)
    baseline, _ = engine.top_k_dominating(QUERY, K, algorithm=algorithm)
    engine.explain(QUERY, K, algorithm=algorithm)
    again, _ = engine.top_k_dominating(QUERY, K, algorithm=algorithm)
    assert [(r.object_id, r.score) for r in again] == [
        (r.object_id, r.score) for r in baseline
    ]


def test_streaming_explain_is_neutral():
    """explain_update applies the exact same repair as a plain update."""
    from repro.streaming.continuous import ContinuousTopK

    def run(explained: bool):
        engine = make_engine(n=120, dims=3, seed=4)
        maintainer = ContinuousTopK(
            engine, [0, 1, 2], 6, aux_mirror=False
        )
        transitions = []
        for object_id in (10, 55, 99):
            if explained:
                delta, plan = maintainer.explain_update(
                    "delete", object_id
                )
                assert plan.funnel
            else:
                delta = maintainer.remove_object(object_id)
            transitions.append(
                [(i.object_id, i.score) for i in maintainer.result]
            )
        return transitions, dict(maintainer.counters)

    assert run(False) == run(True)
