"""The VP-tree access method and index-agnostic PBA execution."""

import random

import pytest

from repro import TopKDominatingEngine
from repro.core.brute_force import brute_force_scores
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager
from repro.vptree import VPTree

from tests.conftest import make_engine, make_vector_space


def build(n=200, seed=0, grid=None, leaf_capacity=8):
    space = make_vector_space(n, dims=3, seed=seed, grid=grid)
    buf = LRUBuffer(PageManager(), capacity=64)
    tree = VPTree.build(
        space, buf, leaf_capacity=leaf_capacity, rng=random.Random(seed)
    )
    return tree, space


class TestStructure:
    def test_all_objects_present(self):
        tree, space = build(n=150)
        assert len(tree) == 150
        assert sorted(tree.object_ids()) == list(range(150))

    def test_pages_allocated(self):
        tree, _ = build(n=200)
        assert tree.num_pages > 1

    def test_duplicate_points_handled(self):
        tree, _ = build(n=150, grid=2)  # massive coincidence
        assert len(tree) == 150
        stream = list(tree.incremental_cursor(0))
        assert len(stream) == 150

    def test_leaf_capacity_validation(self):
        space = make_vector_space(10)
        buf = LRUBuffer(PageManager(), capacity=8)
        with pytest.raises(ValueError):
            VPTree(space, buf, leaf_capacity=1)


class TestCursor:
    def test_stream_matches_brute_order(self):
        tree, space = build(n=180, seed=3)
        for query in (0, 57, 179):
            stream = list(tree.incremental_cursor(query))
            expected = sorted(
                space.distance(query, i) for i in space.object_ids
            )
            assert [d for _i, d in stream] == pytest.approx(expected)

    def test_lazy_distance_computation(self):
        tree, space = build(n=400, seed=4)
        metric = space.metric
        before = metric.snapshot()
        cursor = tree.incremental_cursor(11)
        for _ in range(5):
            next(cursor)
        assert metric.delta_since(before) < 400

    def test_skip_set(self):
        tree, _ = build(n=100, seed=5)
        stream = list(tree.incremental_cursor(0, skip={1, 2, 3}))
        assert not ({1, 2, 3} & {i for i, _d in stream})

    def test_payload_query(self):
        tree, space = build(n=100, seed=6)
        probe = space.payload(7)
        first_id, first_d = next(tree.incremental_cursor(probe))
        assert first_d == pytest.approx(0.0)


class TestDeletion:
    def test_tombstones_respected(self):
        tree, _ = build(n=80, seed=7)
        assert tree.delete(5)
        assert not tree.delete(5)
        assert 5 not in tree
        assert len(tree) == 79
        assert 5 not in {i for i, _d in tree.incremental_cursor(0)}


class TestIndexAgnosticAlgorithms:
    @pytest.fixture
    def engines(self):
        space_m = make_vector_space(n=130, dims=3, seed=8)
        space_v = make_vector_space(n=130, dims=3, seed=8)
        mtree_engine = TopKDominatingEngine(
            space_m, rng=random.Random(8), index="mtree"
        )
        vptree_engine = TopKDominatingEngine(
            space_v, rng=random.Random(8), index="vptree"
        )
        return mtree_engine, vptree_engine

    @pytest.mark.parametrize("algorithm", ["brute", "pba1", "pba2"])
    def test_same_answers_on_both_indexes(self, engines, algorithm):
        mtree_engine, vptree_engine = engines
        queries = [3, 65, 120]
        a, _ = mtree_engine.top_k_dominating(
            queries, 7, algorithm=algorithm
        )
        b, _ = vptree_engine.top_k_dominating(
            queries, 7, algorithm=algorithm
        )
        assert [r.score for r in a] == [r.score for r in b]

    def test_vptree_pba_matches_oracle_with_ties(self):
        space = make_vector_space(n=110, dims=2, seed=9, grid=3)
        engine = TopKDominatingEngine(
            space, rng=random.Random(9), index="vptree"
        )
        queries = [0, 55, 109]
        truth = brute_force_scores(engine.space, queries)
        results, _ = engine.top_k_dominating(queries, 8, algorithm="pba2")
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:8]

    def test_apx_works_on_vptree(self, engines):
        _mtree_engine, vptree_engine = engines
        results, _ = vptree_engine.top_k_dominating(
            [0, 60], 5, algorithm="apx"
        )
        assert len(results) == 5

    def test_sba_aba_rejected_on_vptree(self, engines):
        _mtree_engine, vptree_engine = engines
        for name in ("sba", "aba"):
            with pytest.raises(ValueError):
                vptree_engine.top_k_dominating([0, 60], 3, algorithm=name)

    def test_vptree_static_insert_rejected(self, engines):
        _mtree_engine, vptree_engine = engines
        import numpy as np

        with pytest.raises(NotImplementedError):
            vptree_engine.insert_object(np.zeros(3))

    def test_unknown_index_rejected(self):
        space = make_vector_space(n=20, dims=2, seed=10)
        with pytest.raises(ValueError):
            TopKDominatingEngine(space, index="rtree")
