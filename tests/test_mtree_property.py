"""Property-based tests of the M-tree against brute force."""

import random

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric, ManhattanMetric
from repro.mtree import IncrementalNNCursor, MTree, knn_query, range_query
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

_points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=5,
    max_size=60,
)


def build(points, metric=None, capacity=4, seed=0):
    space = MetricSpace(
        [np.array(p) for p in points],
        CountingMetric(metric or EuclideanMetric()),
    )
    buf = LRUBuffer(PageManager(), capacity=32)
    tree = MTree.build(
        space, buf, node_capacity=capacity, rng=random.Random(seed)
    )
    return tree, space


@settings(max_examples=40, deadline=None)
@given(points=_points, query=st.integers(min_value=0, max_value=4))
def test_incremental_stream_is_brute_force_order(points, query):
    tree, space = build(points)
    stream = list(IncrementalNNCursor(tree, query))
    expected = sorted(space.distance(query, i) for i in space.object_ids)
    assert [d for _i, d in stream] == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(
    points=_points,
    query=st.integers(min_value=0, max_value=4),
    radius=st.floats(min_value=0, max_value=1.5, allow_nan=False),
)
def test_range_query_matches_filter(points, query, radius):
    tree, space = build(points)
    expected = {
        i for i in space.object_ids if space.distance(query, i) <= radius
    }
    got = {i for i, _d in range_query(tree, query, radius)}
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(
    points=_points,
    k=st.integers(min_value=1, max_value=10),
    capacity=st.integers(min_value=4, max_value=10),
)
def test_knn_distances_match_for_any_capacity(points, k, capacity):
    tree, space = build(points, capacity=capacity)
    expected = sorted(space.distance(0, i) for i in space.object_ids)[:k]
    got = [d for _i, d in knn_query(tree, 0, k)]
    assert got == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(points=_points)
def test_structural_invariants_always_hold(points):
    tree, _space = build(points, metric=ManhattanMetric())
    tree.check_invariants()


@settings(max_examples=25, deadline=None)
@given(
    points=_points,
    victims=st.sets(st.integers(min_value=0, max_value=4), max_size=3),
)
def test_delete_then_query_consistent(points, victims):
    tree, space = build(points)
    for victim in victims:
        tree.delete(victim)
    survivors = [i for i in space.object_ids if i not in victims]
    stream = [i for i, _d in IncrementalNNCursor(tree, space.payload(0))]
    assert sorted(stream) == survivors
