"""Degraded-mode distributed answers under injected RPC faults.

The coordinator's contract (coordinator.py docstring): when sites drop,
the answer restricted to the union of the responding partitions is the
true top-k of that union, scores exact over it — verified here against
brute force on exactly that universe.
"""

import random

import pytest

from repro.core.brute_force import brute_force_scores
from repro.distributed import DistributedTopK
from repro.faults.chaos import ChaosConfig, FaultInjector
from repro.faults.errors import CircuitOpen

from tests.conftest import make_vector_space

QUERIES = [0, 30, 60]


def make_system(seed=50, n=90, num_sites=3, chaos=None):
    space = make_vector_space(n=n, dims=3, seed=seed)
    system = DistributedTopK(
        space,
        num_sites=num_sites,
        rng=random.Random(seed),
        chaos=chaos,
    )
    return space, system


def responding_universe(system, coverage, removed=()):
    """Objects of the partitions named responding, minus removals."""
    return [
        object_id
        for site_id in coverage.responding
        for object_id in system.sites[site_id].object_ids
        if object_id not in removed
    ]


class TestForcedOpenBreaker:
    def test_degraded_answer_names_missing_partition(self):
        space, system = make_system(chaos=ChaosConfig(seed=7))
        system.clients[1].breaker.force_open()
        results, stats = system.top_k(QUERIES, 6)
        coverage = stats.coverage
        assert coverage.missing == (1,)
        assert coverage.responding == (0, 2)
        assert coverage.total_sites == 3
        assert coverage.degraded and not coverage.exact
        assert stats.sites_dropped == 1
        assert len(results) == 6

    def test_degraded_scores_are_exact_over_responding_sites(self):
        space, system = make_system(chaos=ChaosConfig(seed=7))
        system.clients[1].breaker.force_open()
        results, stats = system.top_k(QUERIES, 6)
        universe = responding_universe(system, stats.coverage)
        truth = brute_force_scores(space, QUERIES, universe=universe)
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]
        for item in results:
            assert truth[item.object_id] == item.score

    def test_degraded_results_exclude_missing_partition(self):
        space, system = make_system(chaos=ChaosConfig(seed=7))
        system.clients[0].breaker.force_open()
        results, _stats = system.top_k(QUERIES, 8)
        dead = set(system.sites[0].object_ids)
        assert not dead.intersection(r.object_id for r in results)

    def test_breaker_works_without_an_injector(self):
        # degraded mode is a property of the client shim, not of chaos
        # being configured: a plain system has breakers too.
        space, system = make_system(chaos=None)
        assert system.injector is None
        system.clients[2].breaker.force_open()
        results, stats = system.top_k(QUERIES, 4)
        assert stats.coverage.missing == (2,)
        universe = responding_universe(system, stats.coverage)
        truth = brute_force_scores(space, QUERIES, universe=universe)
        for item in results:
            assert truth[item.object_id] == item.score

    def test_all_sites_down_yields_empty_answer(self):
        _space, system = make_system(chaos=ChaosConfig(seed=7))
        for client in system.clients:
            client.breaker.force_open()
        results, stats = system.top_k(QUERIES, 5)
        assert results == []
        assert stats.coverage.responding == ()
        assert stats.coverage.missing == (0, 1, 2)
        assert stats.results_reported == 0

    def test_open_breaker_rejects_locally(self):
        _space, system = make_system(chaos=ChaosConfig(seed=7))
        client = system.clients[0]
        client.breaker.force_open()
        with pytest.raises(CircuitOpen):
            client.local_skyline()
        assert client.stats.breaker_rejections == 1
        assert client.stats.calls == 0  # never reached the site


class TestBreakerRecovery:
    def test_next_query_probes_and_recovers(self):
        clock = {"now": 0.0}
        injector = FaultInjector(
            ChaosConfig(seed=3, breaker_reset_timeout=1.0),
            sleep=lambda _s: None,
            clock=lambda: clock["now"],
        )
        space, system = make_system(chaos=injector)
        system.clients[1].breaker.force_open()
        _results, stats = system.top_k(QUERIES, 3)
        assert stats.coverage.missing == (1,)

        clock["now"] += 1.0  # reset window elapses; probe is admitted
        results, stats = system.top_k(QUERIES, 3)
        assert stats.coverage.exact
        assert stats.coverage.missing == ()
        truth = brute_force_scores(space, QUERIES)
        for item in results:
            assert truth[item.object_id] == item.score


class TestMidQueryFaults:
    def chaotic_injector(self, seed):
        return FaultInjector(
            ChaosConfig(
                seed=seed,
                rpc_fail_p=0.30,
                retry_max_attempts=2,
                breaker_failure_threshold=3,
            ),
            sleep=lambda _s: None,
        )

    def test_every_yield_is_exact_over_its_coverage(self):
        # the per-yield contract: each reported score is the maximum
        # domination count over the remaining objects of the partitions
        # its own coverage names — whatever subset of sites survived.
        space, system = make_system(
            seed=60, chaos=self.chaotic_injector(17)
        )
        removed = set()
        yields = 0
        for item, stats in system.run(QUERIES, 8):
            yields += 1
            universe = responding_universe(
                system, stats.coverage, removed=removed
            )
            truth = brute_force_scores(space, QUERIES, universe=universe)
            assert truth[item.object_id] == item.score
            assert item.score == max(truth.values())
            removed.add(item.object_id)
        assert yields > 0

    def test_faults_actually_fired_and_sites_dropped(self):
        _space, system = make_system(
            seed=60, chaos=self.chaotic_injector(17)
        )
        _results, stats = system.top_k(QUERIES, 8)
        counters = system.injector.counters()
        assert counters.get("rpc.unavailable", 0) > 0
        assert stats.sites_dropped > 0
        assert stats.coverage.degraded

    def test_retries_absorb_faults_with_generous_budget(self):
        injector = FaultInjector(
            ChaosConfig(seed=23, rpc_timeout_p=0.10, retry_max_attempts=6),
            sleep=lambda _s: None,
        )
        space, system = make_system(seed=61, chaos=injector)
        results, stats = system.top_k(QUERIES, 5)
        assert stats.rpc_retries > 0
        assert stats.coverage.exact
        truth = brute_force_scores(space, QUERIES)
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]

    def test_same_chaos_seed_reproduces_run_byte_identically(self):
        def one_run():
            space, system = make_system(
                seed=60, chaos=self.chaotic_injector(17)
            )
            results, stats = system.top_k(QUERIES, 8)
            return (
                [(r.object_id, r.score) for r in results],
                stats.coverage,
                stats.rpc_retries,
                system.injector.fault_log(),
            )

        assert one_run() == one_run()


class TestSnapshots:
    def test_system_snapshot_includes_breakers_and_faults(self):
        # a huge reset timeout keeps the forced-open breaker from
        # drifting to half-open while the query runs on the real clock.
        _space, system = make_system(
            chaos=ChaosConfig(seed=7, breaker_reset_timeout=3600.0)
        )
        system.clients[1].breaker.force_open()
        system.top_k(QUERIES, 3)
        snap = system.snapshot()
        assert len(snap["sites"]) == 3
        assert snap["sites"][1]["breaker"]["state"] == "open"
        assert snap["sites"][1]["rpc"]["breaker_rejections"] > 0
        assert snap["faults"]["seed"] == 7

    def test_plain_system_snapshot_has_no_faults(self):
        _space, system = make_system(chaos=None)
        system.top_k(QUERIES, 2)
        snap = system.snapshot()
        assert snap["faults"] is None
        assert all(
            site["breaker"]["state"] == "closed" for site in snap["sites"]
        )
