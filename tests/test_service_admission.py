"""Unit tests of admission control (bounded queue, deadlines)."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.admission import (
    AdmissionController,
    DeadlineExceeded,
    Overloaded,
    Rejected,
    ServiceError,
    _FifoSlots,
)


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_admits_up_to_max_inflight(self):
        async def scenario():
            controller = AdmissionController(max_inflight=2, max_queue=0)
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            tasks = [asyncio.create_task(occupant()) for _ in range(2)]
            await asyncio.sleep(0.01)
            assert controller.inflight == 2
            # both slots busy, zero queue allowance -> typed rejection
            with pytest.raises(Overloaded):
                async with controller.admit():
                    pass  # pragma: no cover - never admitted
            release.set()
            await asyncio.gather(*tasks)
            assert controller.inflight == 0

        run(scenario())

    def test_queue_absorbs_burst_then_rejects(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=2)
            release = asyncio.Event()
            admitted = []

            async def occupant(tag):
                async with controller.admit():
                    admitted.append(tag)
                    await release.wait()

            first = asyncio.create_task(occupant("first"))
            await asyncio.sleep(0.01)
            waiters = [
                asyncio.create_task(occupant(f"waiter{i}")) for i in range(2)
            ]
            await asyncio.sleep(0.01)
            assert controller.queue_depth == 2
            with pytest.raises(Overloaded) as excinfo:
                async with controller.admit():
                    pass  # pragma: no cover - never admitted
            assert excinfo.value.queue_depth == 2
            assert excinfo.value.max_queue == 2
            release.set()
            await asyncio.gather(first, *waiters)
            assert admitted == ["first", "waiter0", "waiter1"]
            assert controller.peak_queue_depth == 2

        run(scenario())

    def test_idle_server_with_zero_queue_still_serves(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=0)
            async with controller.admit():
                assert controller.inflight == 1

        run(scenario())

    def test_deadline_exceeded_while_queued(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=4)
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                async with controller.admit(deadline=0.05):
                    pass  # pragma: no cover - never admitted
            assert controller.queue_depth == 0, "rejected waiter left queue"
            release.set()
            await task

        run(scenario())

    def test_default_deadline_applies(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=1, max_queue=4, default_deadline=0.05
            )
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                async with controller.admit():
                    pass  # pragma: no cover - never admitted
            release.set()
            await task

        run(scenario())

    def test_slot_released_after_body_raises(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=0)
            with pytest.raises(KeyError):
                async with controller.admit():
                    raise KeyError("body failure")
            # the slot must be free again
            async with controller.admit():
                assert controller.inflight == 1

        run(scenario())


class TestSlotSafety:
    """The GH-90155 class of bugs: timed waits must never leak slots."""

    def test_repeated_deadline_timeouts_do_not_strand_slots(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=8)
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            holder = asyncio.create_task(occupant())
            await asyncio.sleep(0.01)
            for _ in range(5):
                with pytest.raises(DeadlineExceeded):
                    async with controller.admit(deadline=0.02):
                        pass  # pragma: no cover - never admitted
            release.set()
            await holder
            # every timed-out wait must have left the slot recoverable
            for _ in range(3):
                async with controller.admit(deadline=0.5):
                    assert controller.inflight == 1

        run(scenario())

    def test_slot_handed_over_during_cancellation_is_not_lost(self):
        # the precise race: the slot is handed to a waiter in the same
        # event-loop tick its wait is cancelled.  Depending on the
        # Python version the waiter either keeps the slot (3.9's
        # wait_for returns a completed future's result despite the
        # cancel) or is cancelled and must pass the slot on; in both
        # worlds the slot stays usable — never stranded, which is how
        # asyncio.Semaphore failed on 3.9/3.10.
        async def scenario():
            slots = _FifoSlots(1)
            await slots.acquire()
            waiter = asyncio.create_task(slots.acquire(timeout=5))
            await asyncio.sleep(0.01)  # waiter is queued
            slots.release()  # hand the slot over...
            waiter.cancel()  # ...while cancelling the wait, same tick
            try:
                await waiter
                acquired = True
            except asyncio.CancelledError:
                acquired = False
            if acquired:
                slots.release()  # an admitted caller releases normally
            await asyncio.wait_for(slots.acquire(), timeout=1)

        run(scenario())

    def test_timed_out_waiter_leaves_the_queue(self):
        async def scenario():
            slots = _FifoSlots(1)
            await slots.acquire()
            with pytest.raises(asyncio.TimeoutError):
                await slots.acquire(timeout=0.02)
            assert not slots._waiters, "timed-out waiter must dequeue"
            slots.release()
            await asyncio.wait_for(slots.acquire(), timeout=1)

        run(scenario())


class TestErrorTaxonomy:
    def test_rejections_are_typed(self):
        assert issubclass(Overloaded, Rejected)
        assert issubclass(DeadlineExceeded, Rejected)
        assert issubclass(Rejected, ServiceError)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0, max_queue=1)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=1, max_queue=-1)

    def test_snapshot_shape(self):
        controller = AdmissionController(max_inflight=3, max_queue=7)
        snap = controller.snapshot()
        assert snap["max_inflight"] == 3
        assert snap["max_queue"] == 7
        assert snap["queue_depth"] == 0
