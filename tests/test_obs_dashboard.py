"""Dashboard tests: sparklines, page rendering, repro-top, dash CLI."""

from __future__ import annotations

import io
import json

from repro.obs.cli import main as trace_main
from repro.obs.dashboard import (
    SPARK_CHARS,
    follow,
    main as top_main,
    render,
    sparkline,
)
from repro.obs.monitor import MONITOR_FORMAT, Monitor
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import ThresholdRule


def make_document(**overrides):
    """A small but fully-populated monitor document."""
    document = {
        "format": MONITOR_FORMAT,
        "interval": 1.0,
        "ticks": 3,
        "time": 3.0,
        "meta": {"workload": {"n": 100, "algorithm": "pba2"}},
        "store": {"scrapes": 3, "series": 5, "histograms": 1,
                  "capacity": 512},
        "alerts": {"evaluations": 9, "fired": 0, "resolved": 0,
                   "active": [], "rules": [
                       {"name": "r1", "severity": "warn",
                        "for_seconds": 0.0, "evaluations": 3,
                        "breaches": 0, "state": "inactive",
                        "value": None, "detail": ""}]},
        "series": {
            "requests.received": [[1.0, 5.0], [2.0, 12.0], [3.0, 30.0]],
            "requests.completed": [[1.0, 5.0], [2.0, 12.0], [3.0, 30.0]],
            "requests.failures": [[1.0, 0.0], [2.0, 0.0], [3.0, 0.0]],
            "latency.all.p50_seconds": [[1.0, 0.01], [2.0, 0.01],
                                        [3.0, 0.02]],
            "latency.all.p99_seconds": [[1.0, 0.05], [2.0, 0.06],
                                        [3.0, 0.2]],
            "per_algorithm.pba2.executions": [[1.0, 2.0], [3.0, 10.0]],
            "per_algorithm.pba2.distance_computations": [[1.0, 300.0],
                                                         [3.0, 1500.0]],
            "per_algorithm.pba2.page_faults": [[1.0, 10.0], [3.0, 50.0]],
        },
    }
    document.update(overrides)
    return document


class TestSparkline:
    def test_scales_to_range(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert len(line) == 4

    def test_flat_series_is_low_bar(self):
        assert sparkline([5, 5, 5]) == SPARK_CHARS[0] * 3

    def test_width_truncates_to_tail(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestRender:
    def test_sections_present(self):
        page = render(make_document())
        assert "repro-top" in page
        assert "requests" in page
        assert "engine cost" in page
        assert "pba2" in page
        assert "no active alerts" in page

    def test_rates_and_totals(self):
        page = render(make_document())
        # 30 total over (3-1)=2 s -> 12.5/s
        assert "30 total" in page
        assert "12.5/s" in page

    def test_health_line(self):
        document = make_document(health={
            "status": "degraded",
            "checks": {"alerts": {"status": "ok",
                                  "detail": "quiet-check-detail"},
                       "durability": {"status": "degraded",
                                      "detail": "WAL large"}},
        })
        page = render(document)
        assert "DEGRADED" in page
        assert "WAL large" in page
        assert "quiet-check-detail" not in page  # ok checks stay quiet

    def test_active_alert_rendered(self):
        document = make_document()
        document["alerts"]["active"] = [
            {"rule": "latency-burn-rate", "severity": "critical",
             "state": "firing", "since": 1.0, "fired_at": 2.0,
             "resolved_at": None, "value": 8.0, "detail": "burn 8x"}
        ]
        document["alerts"]["fired"] = 1
        page = render(document)
        assert "latency-burn-rate" in page
        assert "firing" in page
        assert "burn 8x" in page

    def test_funnel_from_explain_series(self):
        document = make_document()
        document["series"].update({
            "explain.last_plan.n": [[3.0, 100.0]],
            "explain.last_plan.k": [[3.0, 5.0]],
            "explain.last_plan.distance_computations": [[3.0, 800.0]],
            "explain.last_plan.discard_rules.upper_bound": [[3.0, 60.0]],
            "explain.last_plan.discard_rules.heap": [[3.0, 20.0]],
        })
        page = render(document)
        assert "pruning funnel" in page
        assert "upper_bound" in page

    def test_empty_document_renders(self):
        page = render({"format": MONITOR_FORMAT, "ticks": 0,
                       "interval": 1.0, "series": {}, "alerts": {}})
        assert "repro-top" in page


class TestLiveDocument:
    """Render an actually-exported Monitor document, not a synthetic one."""

    def make_live_file(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        monitor = Monitor(
            registry,
            rules=[ThresholdRule("instruments.events", ">", 1.0)],
            clock=lambda: 0.0,
        )
        counter.inc(5)
        monitor.tick(now=1.0)
        path = tmp_path / "mon.json"
        monitor.write(str(path))
        return path

    def test_round_trip_renders(self, tmp_path):
        path = self.make_live_file(tmp_path)
        out = io.StringIO()
        code = follow(str(path), iterations=1, clear=False, out=out)
        assert code == 0
        assert "repro-top" in out.getvalue()

    def test_follow_waits_for_missing_file(self, tmp_path):
        path = tmp_path / "late.json"
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            # the publisher shows up during the first wait
            if len(sleeps) == 1:
                self.make_live_file(tmp_path).rename(path)

        out = io.StringIO()
        code = follow(str(path), iterations=1, clear=False, out=out,
                      sleep=sleep)
        assert code == 0
        assert "waiting for" in out.getvalue()
        assert sleeps  # it did wait

    def test_follow_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        out = io.StringIO()
        assert follow(str(path), iterations=1, out=out) == 2

    def test_repro_top_once(self, tmp_path, capsys):
        path = self.make_live_file(tmp_path)
        assert top_main([str(path), "--once"]) == 0
        assert "repro-top" in capsys.readouterr().out

    def test_repro_top_once_missing_file_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert top_main([str(missing), "--once"]) == 2
        assert "error" in capsys.readouterr().err

    def test_repro_trace_dash(self, tmp_path, capsys):
        path = self.make_live_file(tmp_path)
        assert trace_main(["dash", str(path)]) == 0
        assert "repro-top" in capsys.readouterr().out

    def test_repro_trace_dash_rejects_trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"format": "repro-trace/1"}))
        assert trace_main(["dash", str(path)]) == 2
        assert "error" in capsys.readouterr().err
