"""Disk behaviour of the AuxB+-tree and retrieval logs, and cleanup
semantics of PBA's per-query temporary state."""

import pytest

from repro import PruningConfig
from repro.core.aux_index import AuxBPlusTree
from repro.core.pba import PBA2
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_engine


class TestLogPaging:
    def test_sequential_appends_localize_io(self):
        buf = LRUBuffer(PageManager(), capacity=4)
        aux = AuxBPlusTree(buf, m=1)
        log = aux.logs[0]
        before = buf.stats.page_faults
        for i in range(1000):
            log.append(i, float(i))
        appended_faults = buf.stats.page_faults - before
        # appends touch one tail page at a time: faults stay near the
        # number of pages, far below the number of appends.
        assert appended_faults < 1000 / 10

    def test_backward_scan_is_sequential(self):
        buf = LRUBuffer(PageManager(), capacity=4)
        aux = AuxBPlusTree(buf, m=1)
        log = aux.logs[0]
        for i in range(800):
            log.append(i, float(i))
        before = buf.stats.page_faults
        consumed = sum(1 for _ in log.scan_backward())
        assert consumed == 800
        scan_faults = buf.stats.page_faults - before
        assert scan_faults <= len(log.file) + 1


class TestPerQueryCleanup:
    def test_full_run_releases_aux_pages(self):
        engine = make_engine(n=120, seed=141)
        manager = engine.buffers.aux_manager
        before_pages = len(manager)
        list(
            PBA2(engine.make_context()).run([0, 60, 110], 5)
        )
        assert len(manager) == before_pages  # all temp pages freed

    def test_early_stop_releases_aux_pages(self):
        engine = make_engine(n=120, seed=142)
        manager = engine.buffers.aux_manager
        before_pages = len(manager)
        gen = PBA2(engine.make_context()).run([1, 61], 8)
        next(gen)
        gen.close()
        assert len(manager) == before_pages

    def test_exception_path_releases_aux_pages(self):
        engine = make_engine(n=80, seed=143)
        manager = engine.buffers.aux_manager
        before_pages = len(manager)
        gen = PBA2(engine.make_context()).run([2, 40], 5)
        next(gen)
        with pytest.raises(RuntimeError):
            gen.throw(RuntimeError("simulated consumer failure"))
        assert len(manager) == before_pages

    def test_repeated_queries_do_not_leak(self):
        engine = make_engine(n=100, seed=144)
        manager = engine.buffers.aux_manager
        baseline = len(manager)
        for _ in range(5):
            engine.top_k_dominating([0, 50], 4, algorithm="pba1")
            engine.top_k_dominating([0, 50], 4, algorithm="pba2")
        assert len(manager) == baseline
