"""Property test: every registered backend answers identically.

The backend protocol's core promise — ``open_engine(index=...)`` is a
performance knob, never a semantics knob.  Over random instances,
every registered backend must agree with brute force (and hence each
other) on ``top_k_dominating``, ``metric_skyline``, range queries and
k-NN, including after capability-gated update interleavings.

Score *sequences* are compared (plus each reported id's true score):
equal-score ties may legitimately be broken differently per backend,
the same contract the cross-algorithm integration tests pin.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.api import open_engine
from repro.core.brute_force import brute_force_scores
from repro.index import available_backends, get_backend
from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric
from repro.skyline.b2ms2 import metric_skyline
from repro.skyline.naive import naive_metric_skyline

_points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=8,
    max_size=40,
)


def _space(points) -> MetricSpace:
    return MetricSpace(
        [np.array(p) for p in points],
        CountingMetric(EuclideanMetric()),
    )


def _engines(points, seed=0):
    """One engine per registered backend over identical data."""
    return {
        backend: open_engine(
            _space(points),
            seed=seed,
            index=backend,
            index_options=(
                {"pivots": 4, "pivot_sample": 16}
                if backend == "pmtree"
                else None
            ),
        )
        for backend in available_backends()
    }


@settings(max_examples=25, deadline=None)
@given(
    points=_points,
    k=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=1, max_value=3),
)
def test_top_k_matches_brute_force_on_every_backend(points, k, m):
    query_ids = list(range(m))
    truth = brute_force_scores(_space(points), query_ids)
    expected_scores = sorted(truth.values(), reverse=True)[:k]
    for backend, engine in _engines(points).items():
        results, _ = engine.top_k_dominating(query_ids, k)
        assert [r.score for r in results] == expected_scores, backend
        for item in results:
            assert truth[item.object_id] == item.score, backend


@settings(max_examples=25, deadline=None)
@given(points=_points, m=st.integers(min_value=2, max_value=3))
def test_skyline_matches_naive_oracle_on_skyline_backends(points, m):
    query_ids = list(range(m))
    expected = sorted(naive_metric_skyline(_space(points), query_ids))
    for backend, engine in _engines(points).items():
        if "skyline" not in get_backend(backend).capabilities:
            continue
        got = sorted(metric_skyline(engine.tree, query_ids))
        assert got == expected, backend


@settings(max_examples=25, deadline=None)
@given(
    points=_points,
    query=st.integers(min_value=0, max_value=7),
    k=st.integers(min_value=1, max_value=8),
    radius=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
)
def test_range_and_knn_agree_with_linear_scan(points, query, k, radius):
    space = _space(points)
    linear = sorted(
        (space.distance(query, i), i) for i in range(len(points))
    )
    expected_range_ids = sorted(i for d, i in linear if d <= radius)
    expected_knn_distances = [d for d, _i in linear[:k]]
    for backend, engine in _engines(points).items():
        got_range = engine.tree.range_query(query, radius)
        assert sorted(i for i, _d in got_range) == expected_range_ids, (
            backend
        )
        got_knn = engine.tree.knn(query, k)
        assert [d for _i, d in got_knn] == pytest.approx(
            expected_knn_distances
        ), backend


@settings(max_examples=15, deadline=None)
@given(points=_points, data=st.data())
def test_update_interleavings_preserve_agreement(points, data):
    """Deletes (all backends) and inserts (capable ones) keep parity."""
    engines = _engines(points)
    n = len(points)
    victims = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            max_size=4,
            unique=True,
        )
    )
    extra = data.draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            max_size=3,
        )
    )
    for backend, engine in engines.items():
        for victim in victims:
            engine.delete_object(victim)
        if "insert" in get_backend(backend).capabilities:
            for payload in extra:
                engine.insert_object(np.array(payload))

    query_ids = [i for i in range(min(2, n)) if i not in victims]
    if not query_ids:
        return
    # per engine, the oracle over that engine's own post-update space
    # (dynamic backends saw the inserts, static ones did not).
    for backend, engine in engines.items():
        universe = list(engine.tree.object_ids())
        truth = brute_force_scores(
            engine.space, query_ids, universe=universe
        )
        expected_scores = sorted(truth.values(), reverse=True)[:5]
        results, _ = engine.top_k_dominating(query_ids, 5)
        assert [r.score for r in results] == expected_scores, backend
        for item in results:
            assert truth[item.object_id] == item.score, backend
