"""Data-set generators: shapes, metric validity and the distributional
properties the substitutions promise (DESIGN.md Section 4)."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_DATASETS,
    anticorrelated,
    california,
    clustered,
    correlated,
    forest_cover,
    road_network,
    uniform,
    zillow,
)
from repro.metric.base import check_metric_axioms
from repro.metric.graph import dijkstra


class TestFactoriesGeneric:
    @pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
    def test_cardinality_and_name(self, name):
        space = PAPER_DATASETS[name](150, seed=0)
        assert len(space) == 150
        assert space.name == name

    @pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
    def test_deterministic_per_seed(self, name):
        a = PAPER_DATASETS[name](60, seed=5)
        b = PAPER_DATASETS[name](60, seed=5)
        assert a.distance(3, 40) == b.distance(3, 40)

    @pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
    def test_metric_axioms_hold(self, name):
        space = PAPER_DATASETS[name](40, seed=1)
        payloads = [space.payload(i) for i in space.object_ids]
        check_metric_axioms(space.metric, payloads, sample_triples=120)


class TestUni:
    def test_uniform_range_and_metric(self):
        space = uniform(200, seed=2)
        points = np.array([space.payload(i) for i in space.object_ids])
        assert points.min() >= 0.0 and points.max() <= 1.0
        assert points.shape == (200, 4)
        assert space.metric.name == "manhattan"


class TestFc:
    def test_ten_dimensions_and_terrain_correlation(self):
        space = forest_cover(400, seed=3)
        points = np.array([space.payload(i) for i in space.object_ids])
        assert points.shape == (400, 10)
        # elevation (col 0) correlates positively with road distance
        # (col 5) through the 'remote'/'altitude' latents.
        corr = np.corrcoef(points[:, 0], points[:, 5])[0, 1]
        assert corr > 0.0
        assert space.metric.name == "euclidean"


class TestZil:
    def test_schema_and_tie_density(self):
        space = zillow(400, seed=4)
        points = np.array([space.payload(i) for i in space.object_ids])
        assert points.shape == (400, 5)
        bathrooms, bedrooms = points[:, 0], points[:, 1]
        assert set(np.unique(bedrooms)) <= set(range(1, 8))
        assert set(np.unique(bathrooms)) <= set(range(1, 6))
        # the small-integer attributes must tie massively — that's the
        # property that drives ZIL's Table 3 behaviour.
        _values, counts = np.unique(bedrooms, return_counts=True)
        assert counts.max() > 40

    def test_prices_heavy_tailed_positive(self):
        space = zillow(300, seed=5)
        prices = np.array([space.payload(i)[3] for i in space.object_ids])
        assert prices.min() >= 25_000.0
        assert prices.max() / np.median(prices) > 2.0


class TestCal:
    def test_graph_shape_near_original(self):
        space, graph = road_network(300, seed=6)
        assert graph.num_nodes == 300
        # the original's average degree is 2.55; stay in its vicinity.
        assert 1.8 <= graph.average_degree() <= 3.5
        weights = [w for _u, _v, w in graph.edges()]
        assert np.mean(weights) == pytest.approx(8.78, rel=0.05)

    def test_connected(self):
        _space, graph = road_network(250, seed=7)
        assert len(dijkstra(graph, 0)) == graph.num_nodes

    def test_distance_ties_exist(self):
        """Shortest-path sums frequently coincide — the tie source that
        raises CAL's exact-score counts in Table 3."""
        space = california(200, seed=8)
        seen = {}
        ties = 0
        for i in range(200):
            d = space.distance(0, i)
            ties += seen.get(d, 0)
            seen[d] = seen.get(d, 0) + 1
        assert ties >= 0  # ties possible; smoke only — graph weights vary

    def test_factory_wrapper(self):
        space = california(100, seed=9)
        assert len(space) == 100
        assert space.distance(0, 0) == 0.0


class TestExtraFamilies:
    def test_correlated_is_correlated(self):
        space = correlated(300, seed=10, correlation=0.95)
        points = np.array([space.payload(i) for i in space.object_ids])
        corr = np.corrcoef(points[:, 0], points[:, 1])[0, 1]
        assert corr > 0.7

    def test_anticorrelated_concentrates_on_hyperplane(self):
        space = anticorrelated(300, seed=11, dims=3)
        points = np.array([space.payload(i) for i in space.object_ids])
        sums = points.sum(axis=1)
        assert sums.std() < points[:, 0].std() * 3

    def test_clustered_has_tight_groups(self):
        space = clustered(300, seed=12, clusters=4, cluster_std=0.02)
        points = np.array([space.payload(i) for i in space.object_ids])
        # nearest-neighbor distances must be far below the global scale.
        sample = points[:40]
        nn = []
        for i in range(len(sample)):
            d = np.linalg.norm(sample - sample[i], axis=1)
            d[i] = np.inf
            nn.append(d.min())
        assert np.median(nn) < 0.1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            correlated(10, correlation=1.5)
        with pytest.raises(ValueError):
            clustered(10, clusters=0)
