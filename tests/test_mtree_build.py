"""Unit tests for M-tree construction and structural invariants."""

import random

import numpy as np
import pytest

from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric
from repro.mtree import MTree
from repro.mtree.split import PROMOTION_POLICIES, promote_and_partition
from repro.mtree.node import LeafEntry
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


def build_tree(n=200, node_capacity=8, policy="sampling", seed=0, grid=None):
    space = make_vector_space(n, dims=3, seed=seed, grid=grid)
    buf = LRUBuffer(PageManager(), capacity=64)
    tree = MTree.build(
        space,
        buf,
        node_capacity=node_capacity,
        split_policy=policy,
        rng=random.Random(seed),
    )
    return tree, space


class TestBuild:
    def test_all_objects_indexed(self):
        tree, space = build_tree(n=150)
        assert len(tree) == 150
        assert set(tree.object_ids()) == set(space.object_ids)

    def test_invariants_hold(self):
        tree, _ = build_tree(n=200)
        tree.check_invariants()

    def test_height_grows(self):
        small, _ = build_tree(n=8, node_capacity=8)
        large, _ = build_tree(n=400, node_capacity=8)
        assert small.height == 1
        assert large.height >= 3

    def test_duplicate_points_supported(self):
        # grid quantization yields many coincident points; the tree
        # must keep every object id (regression for the shared-router
        # split bug).
        tree, _ = build_tree(n=200, grid=3)
        tree.check_invariants()
        assert len(set(tree.object_ids())) == 200

    def test_duplicate_insert_rejected(self):
        tree, _ = build_tree(n=20)
        with pytest.raises(ValueError):
            tree.insert(5)

    def test_capacity_below_four_rejected(self):
        space = make_vector_space(10)
        buf = LRUBuffer(PageManager(), capacity=8)
        with pytest.raises(ValueError):
            MTree(space, buf, node_capacity=3)

    def test_default_capacity_from_page_size(self):
        space = make_vector_space(10)
        buf = LRUBuffer(PageManager(), capacity=8)
        tree = MTree(space, buf)
        assert tree.node_capacity >= 4

    @pytest.mark.parametrize("policy", sorted(PROMOTION_POLICIES))
    def test_every_split_policy_builds_valid_tree(self, policy):
        tree, _ = build_tree(n=120, policy=policy)
        tree.check_invariants()

    def test_unknown_policy_rejected(self):
        space = make_vector_space(60)
        buf = LRUBuffer(PageManager(), capacity=16)
        tree = MTree(space, buf, node_capacity=4, split_policy="bogus")
        with pytest.raises(ValueError):
            for i in space.object_ids:
                tree.insert(i)

    def test_pages_charged_through_buffer(self):
        space = make_vector_space(100)
        buf = LRUBuffer(PageManager(), capacity=8)
        MTree.build(space, buf, node_capacity=6)
        assert buf.stats.logical_accesses > 0


class TestSplitPolicies:
    def _entries(self, n, seed=0):
        rng = np.random.default_rng(seed)
        points = list(rng.random((n, 2)))
        space = MetricSpace(points, CountingMetric(EuclideanMetric()))
        entries = [LeafEntry(i, 0.0) for i in range(n)]
        return entries, space

    @pytest.mark.parametrize("policy", sorted(PROMOTION_POLICIES))
    def test_partition_is_exhaustive_and_disjoint(self, policy):
        entries, space = self._entries(20)
        result = promote_and_partition(
            entries, space.distance, policy=policy, rng=random.Random(1)
        )
        got = {e.object_id for e in result.first_entries} | {
            e.object_id for e in result.second_entries
        }
        assert got == set(range(20))
        assert not (
            {e.object_id for e in result.first_entries}
            & {e.object_id for e in result.second_entries}
        )

    @pytest.mark.parametrize("policy", sorted(PROMOTION_POLICIES))
    def test_both_sides_nonempty(self, policy):
        entries, space = self._entries(12)
        result = promote_and_partition(
            entries, space.distance, policy=policy, rng=random.Random(2)
        )
        assert len(result.first_entries) >= 2
        assert len(result.second_entries) >= 2

    @pytest.mark.parametrize("policy", sorted(PROMOTION_POLICIES))
    def test_radii_cover_members(self, policy):
        entries, space = self._entries(15)
        result = promote_and_partition(
            entries, space.distance, policy=policy, rng=random.Random(3)
        )
        for entry in result.first_entries:
            assert (
                space.distance(entry.object_id, result.promoted_first)
                <= result.first_radius + 1e-9
            )
        for entry in result.second_entries:
            assert (
                space.distance(entry.object_id, result.promoted_second)
                <= result.second_radius + 1e-9
            )

    def test_mmrad_no_worse_than_random(self):
        entries, space = self._entries(16, seed=5)
        best = promote_and_partition(
            entries, space.distance, policy="mmrad", rng=random.Random(0)
        )
        rand = promote_and_partition(
            entries, space.distance, policy="random", rng=random.Random(0)
        )
        assert max(best.first_radius, best.second_radius) <= (
            max(rand.first_radius, rand.second_radius) + 1e-12
        )

    def test_too_few_entries_rejected(self):
        entries, space = self._entries(3)
        with pytest.raises(ValueError):
            promote_and_partition(entries, space.distance)

    def test_unknown_policy_rejected(self):
        entries, space = self._entries(8)
        with pytest.raises(ValueError):
            promote_and_partition(entries, space.distance, policy="nope")
