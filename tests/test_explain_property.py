"""Property: explain arithmetic is conserved, not merely plausible.

Two laws over randomized datasets and queries, all four algorithms:

* **funnel conservation** — at every funnel stage the candidates
  entering equal the survivors plus the sum of per-rule discards; no
  object vanishes from the funnel unexplained and none is counted
  twice.
* **phase attribution telescopes** — the per-span *self* distance
  computations over the plan's phase table sum exactly to the run's
  ``QueryStats.distance_computations``: every distance computation the
  engine charged is attributed to exactly one phase.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs.explain import validate_plan
from tests.conftest import make_engine

ALGORITHMS = ["sba", "aba", "pba1", "pba2"]


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=30, max_value=110))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    grid = draw(st.sampled_from([None, 4, 8]))  # grids force ties
    m = draw(st.integers(min_value=1, max_value=4))
    query_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
            unique=True,
        )
    )
    k = draw(st.integers(min_value=1, max_value=12))
    return n, seed, grid, query_ids, k


@settings(max_examples=20, deadline=None)
@given(instance=instances())
def test_funnel_conserved_and_distances_attributed(instance):
    n, seed, grid, query_ids, k = instance
    engine = make_engine(n=n, dims=3, seed=seed, grid=grid)
    for algorithm in ALGORITHMS:
        engine.buffers.clear()
        results, stats, plan = engine.explain(
            query_ids, k, algorithm=algorithm
        )
        document = plan.as_dict()
        # validate_plan enforces the conservation law internally; the
        # explicit loop below keeps the failure message concrete.
        validate_plan(document)
        for stage in document["funnel"]:
            discarded = sum(stage.get("discards", {}).values())
            assert (
                stage["entering"] == stage["survivors"] + discarded
            ), (
                f"{algorithm}/{stage['phase']}: {stage['entering']} "
                f"entered but {stage['survivors']} + {discarded} "
                "accounted for"
            )
        attributed = sum(
            (phase.get("self_costs") or {}).get(
                "distance_computations", 0
            )
            for phase in document["phases"]
        )
        assert attributed == stats.distance_computations, (
            f"{algorithm}: phases attribute {attributed} distance "
            f"computations, stats counted {stats.distance_computations}"
        )
        assert document["counters"]["distance_computations"] == (
            stats.distance_computations
        )
        assert len(results) == min(k, n)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    ops=st.lists(st.integers(min_value=0, max_value=79), min_size=1,
                 max_size=6),
)
def test_streaming_repair_funnel_conserved(seed, ops):
    from repro.streaming.continuous import ContinuousTopK

    engine = make_engine(n=80, dims=3, seed=seed)
    maintainer = ContinuousTopK(engine, [0, 1], 5, aux_mirror=False)
    present = set(maintainer.member_ids)
    for object_id in ops:
        op = "delete" if object_id in present else "insert"
        _delta, plan = maintainer.explain_update(op, object_id)
        (present.discard if op == "delete" else present.add)(object_id)
        document = plan.as_dict()
        validate_plan(document)
        for stage in document["funnel"]:
            discarded = sum(stage.get("discards", {}).values())
            assert stage["entering"] == stage["survivors"] + discarded
