"""Unit tests for the page-grained storage manager."""

import pytest

from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    PagedFile,
    PageError,
    PageManager,
)


class TestPageManager:
    def test_allocate_returns_distinct_ids(self):
        mgr = PageManager()
        ids = [mgr.allocate() for _ in range(10)]
        assert len(set(ids)) == 10
        assert len(mgr) == 10

    def test_allocation_counter_tracks(self):
        mgr = PageManager()
        for _ in range(5):
            mgr.allocate()
        assert mgr.stats.pages_allocated == 5

    def test_read_returns_payload(self):
        mgr = PageManager()
        page_id = mgr.allocate(payload={"a": 1})
        assert mgr.read_page(page_id).payload == {"a": 1}

    def test_read_unknown_page_raises(self):
        mgr = PageManager()
        with pytest.raises(PageError):
            mgr.read_page(42)

    def test_free_releases_and_recycles(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        mgr.free(page_id)
        assert page_id not in mgr
        recycled = mgr.allocate()
        assert recycled == page_id

    def test_double_free_raises(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        mgr.free(page_id)
        with pytest.raises(PageError):
            mgr.free(page_id)

    def test_double_free_names_the_page(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        mgr.free(page_id)
        with pytest.raises(PageError, match=f"double free of page {page_id}"):
            mgr.free(page_id)

    def test_free_of_unknown_page_names_the_page(self):
        with pytest.raises(PageError, match="free of unknown page 42"):
            PageManager().free(42)

    def test_read_after_free_names_the_page(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        mgr.free(page_id)
        with pytest.raises(PageError, match=f"read of freed page {page_id}"):
            mgr.read_page(page_id)

    def test_read_of_unknown_page_names_the_page(self):
        with pytest.raises(PageError, match="read of unknown page 42"):
            PageManager().read_page(42)

    def test_write_after_free_names_the_page(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        page = mgr.read_page(page_id)
        mgr.free(page_id)
        with pytest.raises(
            PageError, match=f"write of freed page {page_id}"
        ):
            mgr.write_page(page)

    def test_recycled_id_is_live_again(self):
        # freeing then reallocating the same id must clear the freed
        # mark, or the hardened error paths would reject a valid page.
        mgr = PageManager()
        page_id = mgr.allocate(payload="first")
        mgr.free(page_id)
        recycled = mgr.allocate(payload="second")
        assert recycled == page_id
        assert mgr.read_page(recycled).payload == "second"

    def test_write_clears_dirty(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        page = mgr.read_page(page_id)
        page.dirty = True
        mgr.write_page(page)
        assert not mgr.read_page(page_id).dirty

    def test_write_unknown_page_raises(self):
        mgr = PageManager()
        page_id = mgr.allocate()
        page = mgr.read_page(page_id)
        mgr.free(page_id)
        with pytest.raises(PageError):
            mgr.write_page(page)

    def test_default_page_size_is_4kb(self):
        assert PageManager().page_size == DEFAULT_PAGE_SIZE == 4096

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageManager(page_size=0)

    def test_contains_and_iteration(self):
        mgr = PageManager()
        ids = {mgr.allocate() for _ in range(4)}
        assert set(mgr.iter_page_ids()) == ids
        assert all(page_id in mgr for page_id in ids)


class TestCapacityFor:
    def test_capacity_scales_with_entry_size(self):
        mgr = PageManager()
        assert mgr.capacity_for(64) > mgr.capacity_for(128)

    def test_capacity_accounts_for_header(self):
        mgr = PageManager(page_size=128)
        assert mgr.capacity_for(32, header_bytes=32) == (128 - 32) // 32

    def test_capacity_never_below_two(self):
        mgr = PageManager(page_size=64)
        assert mgr.capacity_for(10_000) == 2

    def test_capacity_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            PageManager().capacity_for(0)


class TestPagedFile:
    def test_allocate_tracks_ownership(self):
        mgr = PageManager()
        file = PagedFile(manager=mgr, name="f")
        page_id = file.allocate()
        assert page_id in file.page_ids
        assert len(file) == 1

    def test_free_foreign_page_rejected(self):
        mgr = PageManager()
        file = PagedFile(manager=mgr, name="f")
        foreign = mgr.allocate()
        with pytest.raises(PageError):
            file.free(foreign)

    def test_drop_frees_everything(self):
        mgr = PageManager()
        file = PagedFile(manager=mgr, name="f")
        ids = [file.allocate() for _ in range(5)]
        file.drop()
        assert len(file) == 0
        assert all(page_id not in mgr for page_id in ids)


class RecordingWalSink:
    """Test double for the durability controller's WAL-sink protocol."""

    def __init__(self, accept=True):
        self.accept = accept
        self.events = []

    def accepts_page_events(self):
        return self.accept

    def page_event(self, disk, op, page_id, payload):
        self.events.append((op, page_id))


class TestWalCapture:
    def test_mutations_emit_wal_events_in_order(self):
        mgr = PageManager(name="idx")
        sink = RecordingWalSink()
        mgr.attach_wal(sink)
        page_id = mgr.allocate(payload={"a": 1})
        mgr.write_page(mgr.read_page(page_id))
        mgr.free(page_id)
        assert sink.events == [
            ("alloc", page_id), ("write", page_id), ("free", page_id)
        ]

    def test_capture_respects_the_transaction_gate(self):
        mgr = PageManager(name="idx")
        sink = RecordingWalSink(accept=False)
        mgr.attach_wal(sink)
        page_id = mgr.allocate()
        mgr.free(page_id)
        assert sink.events == []

    def test_rejected_free_appends_no_wal_record(self):
        # a free that raises PageError must leave the log untouched:
        # replaying the WAL would otherwise free a page that is still
        # live in the checkpoint image.
        mgr = PageManager(name="idx")
        sink = RecordingWalSink()
        mgr.attach_wal(sink)
        page_id = mgr.allocate()
        mgr.free(page_id)
        sink.events.clear()
        with pytest.raises(PageError):
            mgr.free(page_id)  # double free
        with pytest.raises(PageError):
            mgr.free(page_id + 999)  # never allocated
        assert sink.events == []

    def test_rejected_write_appends_no_wal_record(self):
        mgr = PageManager(name="idx")
        sink = RecordingWalSink()
        mgr.attach_wal(sink)
        page_id = mgr.allocate()
        page = mgr.read_page(page_id)
        mgr.free(page_id)
        sink.events.clear()
        with pytest.raises(PageError):
            mgr.write_page(page)
        assert sink.events == []

    def test_detach_stops_capture(self):
        mgr = PageManager(name="idx")
        sink = RecordingWalSink()
        mgr.attach_wal(sink)
        mgr.detach_wal()
        mgr.allocate()
        assert sink.events == []

    def test_peek_does_no_accounting_and_no_capture(self):
        mgr = PageManager(name="idx")
        sink = RecordingWalSink()
        mgr.attach_wal(sink)
        page_id = mgr.allocate(payload={"a": 1})
        sink.events.clear()
        reads_before = mgr.stats.logical_reads
        assert mgr.peek(page_id).payload == {"a": 1}
        assert mgr.stats.logical_reads == reads_before
        assert sink.events == []
        with pytest.raises(PageError):
            mgr.peek(page_id + 1)

    def test_restore_state_rebuilds_pages_and_free_list(self):
        mgr = PageManager(name="idx")
        mgr.restore_state(
            pages={0: {"a": 1}, 2: {"b": 2}},
            free_ids=[1],
            freed={1},
            next_id=3,
        )
        assert mgr.read_page(0).payload == {"a": 1}
        assert mgr.read_page(2).payload == {"b": 2}
        with pytest.raises(PageError):
            mgr.read_page(1)
        # the freed id is recycled first, exactly as before the crash.
        assert mgr.allocate() == 1
