"""Property test: random write/checkpoint/crash interleavings recover.

Hypothesis drives a durable engine through a random op/checkpoint
sequence and "crashes" it (``mode="raise"`` — :class:`SimulatedCrash`,
the in-process stand-in for SIGKILL) at a random hit of a random
registered crash point.  Whatever prefix committed, recovery must
rebuild exactly that prefix: same live set, same payload log, and
query answers that match both brute force and a from-scratch engine
fed the same committed prefix.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import open_engine
from repro.core.brute_force import brute_force_scores
from repro.faults.crashpoints import (
    CRASH_POINTS,
    CrashPlan,
    SimulatedCrash,
    clear_plan,
    install_plan,
)
from repro.recovery import recover_engine

from tests.conftest import make_vector_space

N = 14
DIMS = 3
SPACE_SEED = 2
#: ids never deleted, so a fixed probe query stays live at any prefix.
PROTECTED = frozenset({0, 1, 2})
PROBE = sorted(PROTECTED)
K = 4

op_draw = st.one_of(
    st.tuples(
        st.just("insert"),
        st.tuples(*[st.floats(0, 1, allow_nan=False) for _ in range(DIMS)]),
        st.booleans(),  # checkpoint after this op?
    ),
    st.tuples(st.just("delete"), st.integers(0, 10 ** 6), st.booleans()),
)


def fresh_engine(durability=None):
    space = make_vector_space(n=N, dims=DIMS, seed=SPACE_SEED)
    return open_engine(space, seed=SPACE_SEED, durability=durability)


def apply_op(engine, op, arg):
    if op == "insert":
        engine.insert_object(np.asarray(arg, dtype=float))
    else:
        engine.delete_object(arg)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(op_draw, min_size=1, max_size=12),
    site=st.sampled_from(CRASH_POINTS),
    hit=st.integers(1, 5),
)
def test_random_interleavings_recover_the_committed_prefix(ops, site, hit):
    workdir = tempfile.mkdtemp(prefix="repro-recovery-prop-")
    try:
        engine = fresh_engine(durability=workdir)
        install_plan(CrashPlan(site=site, hit=hit, mode="raise"))
        submitted = []  # (op, resolved arg), including the fatal one
        try:
            for op, arg, checkpoint_after in ops:
                if op == "delete":
                    live = sorted(
                        set(engine.tree.object_ids()) - PROTECTED
                    )
                    if not live:
                        continue
                    arg = live[arg % len(live)]
                submitted.append((op, arg))
                apply_op(engine, op, arg)
                if checkpoint_after:
                    engine.checkpoint()
        except SimulatedCrash:
            pass  # the "process" died; only the files survive
        finally:
            clear_plan()

        recovered = recover_engine(workdir)
        epoch = recovered.last_recovery.recovered_epoch
        assert 0 <= epoch <= len(submitted)

        # the committed prefix, replayed into a from-scratch oracle.
        oracle = fresh_engine()
        for op, arg in submitted[:epoch]:
            apply_op(oracle, op, arg)

        live = sorted(oracle.tree.object_ids())
        assert sorted(recovered.tree.object_ids()) == live
        assert len(list(recovered.space.object_ids)) == len(
            list(oracle.space.object_ids)
        )

        items, _stats = recovered.top_k_dominating(PROBE, K)
        truth = brute_force_scores(
            recovered.space, PROBE, universe=live
        )
        assert [item.score for item in items] == sorted(
            truth.values(), reverse=True
        )[:K]
        for item in items:
            assert truth[item.object_id] == item.score
        oracle_items, _ = oracle.top_k_dominating(PROBE, K)
        assert [item.score for item in items] == [
            item.score for item in oracle_items
        ]
        recovered.durability.close()
    finally:
        clear_plan()
        shutil.rmtree(workdir, ignore_errors=True)
