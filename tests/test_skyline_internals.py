"""White-box tests of the B²MS²-style skyline internals."""

import pytest

from repro.skyline.b2ms2 import _dominates_region, _node_lower_bounds


class TestNodeLowerBounds:
    def test_bounds_subtract_radius(self):
        bounds = _node_lower_bounds((5.0, 3.0), covering_radius=2.0)
        assert bounds[0] == pytest.approx(3.0, rel=1e-9)
        assert bounds[1] == pytest.approx(1.0, rel=1e-9)

    def test_bounds_clamped_at_zero(self):
        bounds = _node_lower_bounds((1.0, 0.5), covering_radius=2.0)
        assert bounds == (0.0, 0.0)

    def test_bounds_never_exceed_raw_difference(self):
        # the safety pad may only shrink the bound, never grow it.
        bounds = _node_lower_bounds((10.0,), covering_radius=4.0)
        assert bounds[0] <= 6.0


class TestDominatesRegion:
    def test_strictly_better_everywhere(self):
        assert _dominates_region((1.0, 1.0), (2.0, 2.0))

    def test_needs_strict_somewhere(self):
        assert not _dominates_region((2.0, 2.0), (2.0, 2.0))

    def test_partial_strict_suffices(self):
        assert _dominates_region((2.0, 1.0), (2.0, 2.0))

    def test_any_worse_coordinate_fails(self):
        assert not _dominates_region((3.0, 0.0), (2.0, 2.0))

    def test_region_safety_semantics(self):
        """If the check passes, every vector coordinate-wise >= the
        bounds is strictly dominated."""
        skyline_vector = (1.0, 2.0)
        bounds = (1.5, 2.0)
        assert _dominates_region(skyline_vector, bounds)
        # candidate objects inside the region:
        for candidate in ((1.5, 2.0), (2.0, 3.0), (1.6, 2.1)):
            assert all(c >= b for c, b in zip(candidate, bounds))
            # strict dominance of the candidate must follow.
            le = all(s <= c for s, c in zip(skyline_vector, candidate))
            lt = any(s < c for s, c in zip(skyline_vector, candidate))
            assert le and lt
