"""The brute-force oracle itself (scored against hand-built cases)."""

import numpy as np
import pytest

from repro import BruteForce, MetricSpace, ManhattanMetric
from repro.core.brute_force import brute_force_scores
from repro.core.progressive import QueryContext
from repro.metric.counting import CountingMetric

from tests.conftest import make_engine


def line_space():
    """Objects on a line at 0,1,2,3,4 — scores are fully predictable."""
    points = [np.array([float(i)]) for i in range(5)]
    return MetricSpace(points, CountingMetric(ManhattanMetric()), name="line")


class TestScores:
    def test_line_with_query_at_origin(self):
        space = line_space()
        scores = brute_force_scores(space, [0])
        # distance to q is the coordinate itself; i dominates j iff i<j.
        assert scores == {0: 4, 1: 3, 2: 2, 3: 1, 4: 0}

    def test_two_queries_at_ends_make_middle_win(self):
        space = line_space()
        scores = brute_force_scores(space, [0, 4])
        # vectors: (0,4),(1,3),(2,2),(3,1),(4,0) — pairwise incomparable.
        assert all(score == 0 for score in scores.values())

    def test_equivalent_objects_do_not_dominate_each_other(self):
        points = [np.array([0.0]), np.array([1.0]), np.array([-1.0]),
                  np.array([2.0])]
        space = MetricSpace(points, CountingMetric(ManhattanMetric()))
        scores = brute_force_scores(space, [0])
        # objects 1 and 2 are both at distance 1: equivalent.
        assert scores[1] == scores[2] == 1  # both dominate only object 3
        assert scores[0] == 3

    def test_restricted_universe(self):
        space = line_space()
        scores = brute_force_scores(space, [0], universe=[2, 3, 4])
        assert scores == {2: 2, 3: 1, 4: 0}


class TestAlgorithmWrapper:
    def test_progressive_order(self):
        engine = make_engine(n=60, seed=11)
        ctx = engine.make_context()
        algo = BruteForce(ctx)
        results = list(algo.run([0, 30], 10))
        scores = [item.score for item in results]
        assert scores == sorted(scores, reverse=True)
        assert len(results) == 10

    def test_validation(self):
        engine = make_engine(n=20, seed=12)
        algo = BruteForce(engine.make_context())
        with pytest.raises(ValueError):
            list(algo.run([], 3))
        with pytest.raises(ValueError):
            list(algo.run([0, 0], 3))
        with pytest.raises(ValueError):
            list(algo.run([999], 3))
        with pytest.raises(ValueError):
            list(algo.run([0], -1))

    def test_k_zero_yields_nothing(self):
        engine = make_engine(n=20, seed=13)
        algo = BruteForce(engine.make_context())
        assert list(algo.run([0], 0)) == []

    def test_top_k_convenience(self):
        engine = make_engine(n=30, seed=14)
        algo = BruteForce(engine.make_context())
        assert algo.top_k([0, 5], 3) == list(algo.run([0, 5], 3))

    def test_result_item_unpacking(self):
        engine = make_engine(n=30, seed=15)
        algo = BruteForce(engine.make_context())
        object_id, score = next(iter(algo.run([0], 1)))
        assert isinstance(object_id, int)
        assert isinstance(score, int)
