"""ASCII chart rendering."""

import pytest

from repro.bench.charts import (
    GLYPHS,
    render_ascii_chart,
    render_figure_charts,
)
from repro.bench.harness import CellResult
from repro.storage.stats import QueryStats


def _cell(dataset, algorithm, value, dists):
    stats = QueryStats()
    stats.distance_computations = dists
    stats.cpu_seconds = dists / 1000.0
    return CellResult(
        dataset=dataset,
        algorithm=algorithm,
        parameter="m",
        value=value,
        m=int(value),
        k=10,
        c=0.2,
        stats=stats,
    )


@pytest.fixture
def cells():
    out = []
    for value in (2, 5, 10):
        out.append(_cell("UNI", "sba", value, 10_000 * value))
        out.append(_cell("UNI", "pba2", value, 500 * value))
        out.append(_cell("CAL", "sba", value, 20_000 * value))
        out.append(_cell("CAL", "pba2", value, 800 * value))
    return out


class TestRenderAsciiChart:
    def test_contains_axis_and_legend(self, cells):
        text = render_ascii_chart(cells, "dists", "UNI")
        assert "m=2" in text and "m=10" in text
        assert "2=PBA2" in text and "s=SBA" in text
        assert "log scale" in text

    def test_orders_of_magnitude_separate_vertically(self, cells):
        text = render_ascii_chart(cells, "dists", "UNI")
        lines = text.splitlines()
        # SBA's glyph must appear on a higher row than PBA2's.
        sba_rows = [i for i, ln in enumerate(lines) if "s" in ln[7:]]
        pba_rows = [i for i, ln in enumerate(lines) if "2" in ln[7:]]
        assert min(sba_rows) < min(pba_rows)  # earlier line = higher

    def test_missing_dataset_handled(self, cells):
        assert "no data" in render_ascii_chart(cells, "dists", "ZIL")

    def test_zero_values_clamped(self):
        cells = [_cell("UNI", "pba2", 2, 0)]
        text = render_ascii_chart(cells, "dists", "UNI")
        assert "UNI" in text  # renders without math errors

    def test_custom_title(self, cells):
        text = render_ascii_chart(
            cells, "dists", "UNI", title="my title"
        )
        assert text.startswith("my title")


class TestRenderFigureCharts:
    def test_stacks_all_datasets(self, cells):
        text = render_figure_charts(cells, "dists", "Figure X")
        assert text.count("log scale") == 2
        assert "Figure X" in text

    def test_every_algorithm_has_glyph(self):
        assert set(GLYPHS) >= {"sba", "aba", "pba1", "pba2"}
