"""ABA-specific behaviour (Algorithm 2)."""

import pytest

from repro import ABA
from repro.anns import AggregateNNCursor
from repro.core.brute_force import brute_force_scores
from repro.core.dominance import DistanceVectorSource

from tests.conftest import make_engine


@pytest.fixture
def engine():
    return make_engine(n=130, seed=31)


class TestCorrectness:
    def test_matches_oracle(self, engine):
        queries = [4, 65, 120]
        truth = brute_force_scores(engine.space, queries)
        results = list(ABA(engine.make_context()).run(queries, 6))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]
        for item in results:
            assert truth[item.object_id] == item.score

    def test_with_ties(self):
        engine = make_engine(n=100, seed=32, grid=3)
        queries = [0, 50]
        truth = brute_force_scores(engine.space, queries)
        results = list(ABA(engine.make_context()).run(queries, 8))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:8]

    def test_descending_scores_and_unique_ids(self, engine):
        results = list(ABA(engine.make_context()).run([7, 77], 10))
        scores = [r.score for r in results]
        ids = [r.object_id for r in results]
        assert scores == sorted(scores, reverse=True)
        assert len(set(ids)) == len(ids)

    def test_k_greater_than_n(self):
        engine = make_engine(n=12, seed=33)
        assert len(list(ABA(engine.make_context()).run([0, 6], 99))) == 12


class TestCandidateSetLogic:
    def test_candidates_cover_all_undominated_objects(self, engine):
        """The range-query candidate set must contain every object the
        first ANN does not dominate (the paper's Figure 3 argument)."""
        queries = [9, 90]
        source = DistanceVectorSource(engine.space, queries)
        p, _adist = next(AggregateNNCursor(engine.tree, queries))
        p_vec = source.vector(p)
        from repro.mtree.queries import range_query

        candidates = {p}
        for j, q in enumerate(queries):
            candidates |= {
                i for i, _d in range_query(engine.tree, q, p_vec[j])
            }
        for obj in engine.space.object_ids:
            if obj not in candidates:
                assert source.dominates(p, obj)

    def test_candidate_scoring_counted(self, engine):
        ctx = engine.make_context()
        list(ABA(ctx).run([0, 64], 3))
        assert ctx.stats.exact_score_computations > 0
        assert ctx.stats.objects_retrieved > 0


class TestPhysicalRemoval:
    def test_physical_removal_same_answer(self, engine):
        queries = [15, 95]
        skip_based = list(ABA(engine.make_context()).run(queries, 5))
        physical = list(
            ABA(engine.make_context(), remove_physically=True).run(
                queries, 5
            )
        )
        assert [r.score for r in skip_based] == [r.score for r in physical]

    def test_tree_restored(self, engine):
        before = len(engine.tree)
        list(
            ABA(engine.make_context(), remove_physically=True).run(
                [3, 30], 4
            )
        )
        assert len(engine.tree) == before
