"""Edge cases of the plain-text reporting layer."""

import pytest

from repro.bench.harness import CellResult
from repro.bench.reporting import (
    METRICS,
    _format_param,
    format_series_table,
    format_table2,
    format_table3,
)
from repro.storage.stats import QueryStats


def _cell(dataset, algorithm, parameter, value, **stat_kwargs):
    stats = QueryStats()
    for key, val in stat_kwargs.items():
        setattr(stats, key, val)
    params = {"m": 5, "k": 10, "c": 0.2}
    if parameter in params:
        params[parameter] = value
    return CellResult(
        dataset=dataset,
        algorithm=algorithm,
        parameter=parameter,
        value=value,
        m=int(params["m"]),
        k=int(params["k"]),
        c=float(params["c"]),
        stats=stats,
    )


class TestFormatting:
    def test_coverage_rendered_as_percent(self):
        assert _format_param("c", 0.2) == "20%"
        assert _format_param("c", 0.01) == "1%"

    def test_integers_rendered_bare(self):
        assert _format_param("m", 5) == "5"
        assert _format_param("k", 30) == "30"


class TestSeriesTable:
    def test_missing_cell_shows_dash(self):
        cells = [
            _cell("UNI", "sba", "m", 2, cpu_seconds=1.0),
            _cell("UNI", "sba", "m", 5, cpu_seconds=2.0),
            _cell("UNI", "pba2", "m", 2, cpu_seconds=0.1),
            # pba2 at m=5 missing
        ]
        text = format_series_table(cells, "cpu", "T")
        assert "-" in text

    def test_multiple_datasets_blocked(self):
        cells = [
            _cell("UNI", "sba", "m", 2),
            _cell("CAL", "sba", "m", 2),
        ]
        text = format_series_table(cells, "io", "T")
        assert "UNI" in text and "CAL" in text

    def test_count_metrics_render_as_integers(self):
        cells = [
            _cell("UNI", "pba2", "m", 2, distance_computations=1234),
        ]
        text = format_series_table(cells, "dists", "T")
        assert "1234" in text


class TestTables:
    def test_table2_empty_input(self):
        text = format_table2({})
        assert "Table 2" in text

    def test_table3_handles_missing_algorithm(self):
        cells = {
            "m": [
                _cell("UNI", "pba1", "m", 2, exact_score_computations=7),
            ]
        }
        text = format_table3(cells)
        assert "7/-" in text or "7" in text
