"""Smoke tests for the benchmark harness, reporting and CLI."""

import json

import pytest

from repro.bench.config import PROFILES, BenchProfile
from repro.bench.figures import FIGURES, TABLES
from repro.bench.harness import BenchHarness, CellResult
from repro.bench.reporting import (
    METRICS,
    format_series_table,
    format_table2,
    format_table3,
)
from repro.bench.cli import main as cli_main

_TINY = BenchProfile(
    name="tiny",
    n=80,
    repeats=1,
    m_values=(2, 3),
    k_values=(1, 3),
    c_values=(0.2, 0.5),
    datasets=("UNI",),
    algorithms=("pba1", "pba2"),
)


@pytest.fixture(scope="module")
def harness():
    return BenchHarness(_TINY, verbose=False)


class TestHarness:
    def test_engine_cached(self, harness):
        first = harness.engine("UNI")
        second = harness.engine("UNI")
        assert first is second

    def test_sweep_m_produces_grid(self, harness):
        cells = harness.sweep_m()
        assert len(cells) == len(_TINY.m_values) * len(_TINY.algorithms)
        assert {cell.parameter for cell in cells} == {"m"}
        for cell in cells:
            assert cell.stats.results_reported > 0

    def test_sweep_k_varies_k(self, harness):
        cells = harness.sweep_k(algorithms=["pba2"])
        assert [cell.k for cell in cells] == list(_TINY.k_values)

    def test_sweep_c_varies_c(self, harness):
        cells = harness.sweep_c(algorithms=["pba2"])
        assert [cell.c for cell in cells] == list(_TINY.c_values)

    def test_cell_as_dict_round_trips_json(self, harness):
        cell = harness.sweep_m(algorithms=["pba2"])[0]
        payload = json.dumps(cell.as_dict())
        parsed = json.loads(payload)
        assert parsed["dataset"] == "UNI"
        assert parsed["algorithm"] == "pba2"
        assert parsed["distance_computations"] >= 0

    def test_measure_is_average_over_repeats(self):
        profile = BenchProfile(
            name="rep", n=60, repeats=3, datasets=("UNI",),
            algorithms=("pba2",), m_values=(2,), k_values=(1,),
            c_values=(0.2,),
        )
        harness = BenchHarness(profile, verbose=False)
        cell = harness.measure(
            "UNI", "pba2", m=2, k=1, c=0.2, parameter="m", value=2
        )
        assert cell.stats.results_reported == 1  # averaged, not summed


class TestReporting:
    def test_series_table_contains_all_algorithms(self, harness):
        cells = harness.sweep_m()
        text = format_series_table(cells, "cpu", "CPU")
        for algorithm in _TINY.algorithms:
            assert algorithm.upper() in text

    def test_metric_extractors(self, harness):
        cell = harness.sweep_m(algorithms=["pba2"])[0]
        for name, extract in METRICS.items():
            assert extract(cell) >= 0

    def test_table2_renders(self, harness):
        cells = {
            "m": harness.sweep_m(algorithms=["pba2"]),
            "k": harness.sweep_k(algorithms=["pba2"]),
            "c": harness.sweep_c(algorithms=["pba2"]),
        }
        text = format_table2(cells)
        assert "Table 2" in text and "UNI" in text and "CPU" in text

    def test_table3_renders(self, harness):
        cells = {
            "m": harness.sweep_m(),
            "k": harness.sweep_k(),
            "c": harness.sweep_c(),
        }
        text = format_table3(cells)
        assert "Table 3" in text and "/" in text


class TestDefinitions:
    def test_all_paper_exhibits_defined(self):
        assert set(FIGURES) == {"4", "5", "6", "7", "8"}
        assert set(TABLES) == {"2", "3"}

    def test_figure_exhibit_runs_end_to_end(self, harness):
        report, cells = FIGURES["8"].run(harness)
        assert "Figure 8" in report
        assert cells

    def test_table_exhibit_runs_end_to_end(self, harness):
        report, cells = TABLES["3"].run(harness)
        assert "Table 3" in report
        assert all(c.algorithm in ("pba1", "pba2") for c in cells)

    def test_profiles_exist(self):
        assert {"smoke", "quick", "full"} <= set(PROFILES)
        assert PROFILES["full"].n > PROFILES["quick"].n


class TestCli:
    def test_nothing_selected_errors(self, capsys):
        assert cli_main(["figures"]) == 2

    def test_figure_run(self, capsys, tmp_path):
        out = tmp_path / "cells.json"
        code = cli_main(
            [
                "figures", "--figure", "8", "--profile", "smoke",
                "--n", "60", "--repeats", "1", "--datasets", "UNI",
                "--quiet", "--json", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 8" in captured.out
        cells = json.loads(out.read_text())
        assert cells and all("dataset" in c for c in cells)
