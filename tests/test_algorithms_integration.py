"""Cross-algorithm integration over every data-set family and metric."""

import random

import pytest

from repro import TopKDominatingEngine
from repro.core.brute_force import brute_force_scores
from repro.datasets import (
    anticorrelated,
    california,
    clustered,
    correlated,
    forest_cover,
    uniform,
    zillow,
)
from repro.datasets.queries import select_query_objects

ALGORITHMS = ("sba", "aba", "pba1", "pba2")

FACTORIES = {
    "UNI": uniform,
    "FC": forest_cover,
    "ZIL": zillow,
    "CAL": california,
    "CORR": correlated,
    "ANTI": anticorrelated,
    "CLUST": clustered,
}


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def bundle(request):
    name = request.param
    space = FACTORIES[name](120, seed=3)
    engine = TopKDominatingEngine(
        space, index_options={"node_capacity": 10}, rng=random.Random(3)
    )
    queries = select_query_objects(
        engine.space, m=4, coverage=0.3, rng=random.Random(9)
    )
    truth = brute_force_scores(engine.space, queries)
    return name, engine, queries, truth


class TestEveryDatasetFamily:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_algorithm_matches_oracle(self, bundle, algorithm):
        name, engine, queries, truth = bundle
        expected = sorted(truth.values(), reverse=True)[:8]
        results, stats = engine.top_k_dominating(
            queries, 8, algorithm=algorithm
        )
        assert [r.score for r in results] == expected, name
        for item in results:
            assert truth[item.object_id] == item.score

    def test_stats_populated(self, bundle):
        _name, engine, queries, _truth = bundle
        _results, stats = engine.top_k_dominating(
            queries, 5, algorithm="pba2"
        )
        assert stats.cpu_seconds > 0
        assert stats.distance_computations > 0
        assert stats.results_reported == 5


class TestConsistencyAcrossAlgorithms:
    def test_same_score_sequences(self, bundle):
        _name, engine, queries, _truth = bundle
        sequences = {}
        for algorithm in ALGORITHMS:
            results, _ = engine.top_k_dominating(
                queries, 6, algorithm=algorithm
            )
            sequences[algorithm] = [r.score for r in results]
        assert len({tuple(s) for s in sequences.values()}) == 1

    def test_top1_agreement_on_score(self, bundle):
        _name, engine, queries, truth = bundle
        best = max(truth.values())
        for algorithm in ALGORITHMS:
            results, _ = engine.top_k_dominating(
                queries, 1, algorithm=algorithm
            )
            assert results[0].score == best
