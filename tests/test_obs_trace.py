"""Unit tests for the span tracer core (repro.obs.trace)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import trace
from repro.obs.trace import NOOP_SPAN, CostSnapshot, Tracer
from repro.storage.stats import PAGE_FAULT_COST_SECONDS


class FakeClock:
    """Deterministic monotonically advancing clock."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestNoOpPath:
    def test_span_without_trace_is_noop(self):
        with trace.span("anything") as span_obj:
            assert span_obj is NOOP_SPAN
            assert not span_obj  # falsy: call sites guard with `if`
            span_obj.set("key", "value")  # accepted, discarded

    def test_event_without_trace_is_noop(self):
        trace.event("nothing.happens")  # must not raise

    def test_active_false_by_default(self):
        assert not trace.active()
        assert trace.capture() is None

    def test_noop_context_reusable(self):
        ctx = trace.span("a")
        with ctx:
            pass
        with ctx:  # the shared singleton must be re-enterable
            pass


class TestSpanRecording:
    def test_root_and_child_nesting(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("root") as root:
            assert trace.active()
            with trace.span("child") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
        assert not trace.active()
        spans = tracer.spans()
        assert [s.name for s in spans] == ["child", "root"]  # finish order
        assert spans[0].end is not None

    def test_fake_clock_durations(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.trace("root"):
            with trace.span("inner"):
                pass
        inner, root = tracer.spans()
        # clock reads: root start=0, inner start=1, inner end=2, root end=3
        assert (root.start, root.end) == (0.0, 3.0)
        assert (inner.start, inner.end) == (1.0, 2.0)
        assert inner.duration == 1.0

    def test_separate_traces_get_distinct_trace_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("a"):
            pass
        with tracer.trace("b"):
            pass
        a, b = tracer.spans()
        assert a.trace_id != b.trace_id

    def test_args_and_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("root", args={"k": 10}) as root:
            root.set("cached", False)
        (span_obj,) = tracer.spans()
        assert span_obj.args == {"k": 10, "cached": False}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                raise RuntimeError("boom")
        (span_obj,) = tracer.spans()
        assert span_obj.args["error"] == "RuntimeError"

    def test_event_is_instant(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("root") as root:
            trace.event("fault.storage.transient", args={"target": "d:1"})
        instant = next(s for s in tracer.spans() if s.phase == "i")
        assert instant.parent_id == root.span_id
        assert instant.start == instant.end
        assert instant.args["target"] == "d:1"

    def test_capacity_bound_counts_drops(self):
        tracer = Tracer(clock=FakeClock(), capacity=2)
        for _ in range(4):
            with tracer.trace("r"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 2
        snap = tracer.snapshot()
        assert snap == {"spans": 2, "dropped": 2, "capacity": 2}

    def test_clear_keeps_dropped_counter(self):
        tracer = Tracer(clock=FakeClock(), capacity=1)
        for _ in range(2):
            with tracer.trace("r"):
                pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestCostProbes:
    def test_probe_deltas(self):
        counters = {"faults": 0, "dist": 0}

        def probe() -> CostSnapshot:
            return CostSnapshot(
                page_faults=counters["faults"],
                distance_computations=counters["dist"],
            )

        tracer = Tracer(clock=FakeClock())
        with tracer.trace("root", probe=probe):
            counters["faults"] += 2
            with trace.span("inner"):  # inherits the ambient probe
                counters["faults"] += 3
                counters["dist"] += 7
        inner, root = tracer.spans()
        assert root.costs.page_faults == 5
        assert root.costs.distance_computations == 7
        assert inner.costs.page_faults == 3
        assert inner.costs.distance_computations == 7

    def test_span_probe_overrides_ambient(self):
        def zero_probe() -> CostSnapshot:
            return CostSnapshot()

        counters = {"dist": 0}

        def live_probe() -> CostSnapshot:
            return CostSnapshot(distance_computations=counters["dist"])

        tracer = Tracer(clock=FakeClock())
        with tracer.trace("root", probe=zero_probe):
            with trace.span("inner", probe=live_probe):
                counters["dist"] += 4
        inner, root = tracer.spans()
        assert inner.costs.distance_computations == 4
        assert root.costs.distance_computations == 0

    def test_no_probe_means_no_costs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("root"):
            pass
        (root,) = tracer.spans()
        assert root.costs is None

    def test_io_seconds_convention(self):
        snap = CostSnapshot(page_faults=3)
        assert snap.io_seconds == pytest.approx(3 * PAGE_FAULT_COST_SECONDS)
        assert snap.as_dict()["io_seconds"] == snap.io_seconds


class TestThreadPropagation:
    def test_attach_carries_scope_to_thread(self):
        tracer = Tracer(clock=FakeClock())
        recorded = {}

        def worker(scope):
            with trace.attach(scope):
                with trace.span("worker.task") as span_obj:
                    recorded["parent"] = span_obj.parent_id
                    recorded["trace"] = span_obj.trace_id

        with tracer.trace("root") as root:
            scope = trace.capture()
            thread = threading.Thread(target=worker, args=(scope,))
            thread.start()
            thread.join()
        assert recorded["parent"] == root.span_id
        assert recorded["trace"] == root.trace_id

    def test_attach_none_is_noop(self):
        with trace.attach(None):
            assert not trace.active()

    def test_plain_thread_sees_no_scope(self):
        tracer = Tracer(clock=FakeClock())
        seen = {}

        def worker():
            seen["active"] = trace.active()

        with tracer.trace("root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["active"] is False


def test_iter_roots():
    tracer = Tracer(clock=FakeClock())
    with tracer.trace("r1"):
        with trace.span("c"):
            trace.event("e")
    with tracer.trace("r2"):
        pass
    roots = list(trace.iter_roots(tracer.spans()))
    assert [r.name for r in roots] == ["r1", "r2"]


def test_as_dict_shape():
    tracer = Tracer(clock=FakeClock())
    with tracer.trace("root", category="request", args={"k": 1}):
        pass
    (root,) = tracer.spans()
    data = root.as_dict()
    assert data["name"] == "root"
    assert data["cat"] == "request"
    assert data["ph"] == "X"
    assert data["parent_id"] is None
    assert data["args"] == {"k": 1}
    assert data["costs"] is None
    assert isinstance(data["thread"], int)
