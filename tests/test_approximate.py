"""The randomized approximate algorithm (paper future work, §6)."""

import pytest

from repro.core.approximate import (
    ApproximateTopK,
    hoeffding_confidence,
    recall_against_exact,
    sample_size_for,
)
from repro.core.brute_force import brute_force_scores

from tests.conftest import make_engine


class TestHoeffdingMath:
    def test_confidence_increases_with_sample(self):
        assert hoeffding_confidence(1000, 0.05) > hoeffding_confidence(
            100, 0.05
        )

    def test_confidence_bounds(self):
        assert hoeffding_confidence(0, 0.1) == 0.0
        assert 0.0 <= hoeffding_confidence(50, 0.1) <= 1.0

    def test_sample_size_satisfies_target(self):
        size = sample_size_for(epsilon=0.05, delta=0.05)
        assert hoeffding_confidence(size, 0.05) >= 0.95

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            sample_size_for(epsilon=0.0, delta=0.5)
        with pytest.raises(ValueError):
            sample_size_for(epsilon=0.5, delta=1.5)


class TestExactDegeneration:
    def test_full_sample_full_pool_is_exact(self):
        engine = make_engine(n=80, seed=71)
        queries = [0, 40]
        truth = brute_force_scores(engine.space, queries)
        algo = ApproximateTopK(
            engine.make_context(),
            candidate_pool=80,
            sample_size=80,
        )
        results = list(algo.run(queries, 5))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]
        for item in results:
            assert truth[item.object_id] == item.score


class TestAccuracy:
    def test_recall_reasonable_at_moderate_sampling(self):
        engine = make_engine(n=300, seed=72)
        queries = [0, 150, 290]
        truth = brute_force_scores(engine.space, queries)
        algo = ApproximateTopK(
            engine.make_context(),
            candidate_pool=100,
            sample_size=120,
            seed=1,
        )
        results = list(algo.run(queries, 10))
        assert recall_against_exact(results, truth, 10) >= 0.5

    def test_larger_sample_never_needs_more_candidates(self):
        engine = make_engine(n=200, seed=73)
        queries = [0, 100]
        truth = brute_force_scores(engine.space, queries)
        recalls = []
        for sample_size in (20, 200):
            algo = ApproximateTopK(
                engine.make_context(),
                candidate_pool=200,
                sample_size=sample_size,
                seed=2,
            )
            results = list(algo.run(queries, 10))
            recalls.append(recall_against_exact(results, truth, 10))
        assert recalls[-1] >= recalls[0]

    def test_deterministic_per_seed(self):
        engine = make_engine(n=100, seed=74)
        queries = [0, 50]
        runs = []
        for _ in range(2):
            algo = ApproximateTopK(
                engine.make_context(), sample_size=30, seed=9
            )
            runs.append([r.object_id for r in algo.run(queries, 5)])
        assert runs[0] == runs[1]


class TestCostSavings:
    def test_cheaper_than_exact_pba(self):
        engine = make_engine(n=400, seed=75)
        queries = [0, 200, 390]
        ctx_apx = engine.make_context()
        algo = ApproximateTopK(
            ctx_apx, candidate_pool=40, sample_size=40, seed=3
        )
        metric = engine.space.metric
        before = metric.snapshot()
        list(algo.run(queries, 10))
        apx_cost = metric.delta_since(before)
        _res, exact_stats = engine.top_k_dominating(
            queries, 10, algorithm="sba"
        )
        assert apx_cost < exact_stats.distance_computations


class TestEngineIntegration:
    def test_registered_as_apx(self):
        engine = make_engine(n=60, seed=76)
        results, stats = engine.top_k_dominating(
            [0, 30], 5, algorithm="apx"
        )
        assert len(results) == 5
        assert stats.results_reported == 5

    def test_recall_helper_edge_cases(self):
        assert recall_against_exact([], {1: 5}, 3) == 0.0
