"""Tests of the closed-loop load generator and ``repro-serve`` CLI."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import LoadConfig, QueryService, ServiceConfig, run_load
from repro.service.loadgen import main


class TestRunLoad:
    def test_read_only_run_completes_everything(self, small_engine):
        config = LoadConfig(
            clients=4, requests=24, pool_size=6, m=3, k=5, seed=11
        )
        with QueryService(small_engine, ServiceConfig(workers=2)) as service:
            report = asyncio.run(run_load(service, config))
        assert report.completed == 24
        assert report.writes == 0
        assert report.throughput > 0
        assert len(report.latencies) == 24
        # Zipf skew over a 6-set pool with 24 requests must repeat
        # some query, so the cache or the coalescer saves work.
        assert report.cache_hits + report.coalesced > 0
        assert report.latency_quantile(0.99) >= report.latency_quantile(0.5)

    def test_write_mix_is_verified_against_brute_force(self, small_engine):
        config = LoadConfig(
            clients=3,
            requests=20,
            write_fraction=0.3,
            pool_size=4,
            m=3,
            k=5,
            seed=13,
            verify=True,
        )
        with QueryService(small_engine, ServiceConfig(workers=2)) as service:
            report = asyncio.run(run_load(service, config))
        assert report.writes > 0
        assert report.completed == 20 - report.writes
        # every completed query was audited: verified, or provably
        # unverifiable because a write landed before the audit ran.
        assert report.verified + report.unverifiable == report.completed
        assert report.verified > 0

    def test_render_mentions_key_numbers(self, small_engine):
        config = LoadConfig(clients=2, requests=6, pool_size=3, m=2, k=3)
        with QueryService(small_engine, ServiceConfig(workers=1)) as service:
            report = asyncio.run(run_load(service, config))
        text = report.render()
        assert "completed" in text and "latency p99" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(clients=0)
        with pytest.raises(ValueError):
            LoadConfig(write_fraction=1.5)
        with pytest.raises(ValueError):
            LoadConfig(pool_size=0)


class TestConsoleScript:
    def test_main_runs_and_reports(self, capsys, tmp_path):
        json_path = tmp_path / "snapshot.json"
        exit_code = main(
            [
                "--n", "80",
                "--requests", "16",
                "--clients", "3",
                "--workers", "2",
                "--pool", "4",
                "--m", "3",
                "--k", "5",
                "--no-io-model",
                "--stats",
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert '"cache"' in out, "--stats must dump the metrics JSON"
        snapshot = json.loads(json_path.read_text())
        assert snapshot["requests"]["completed"] == 16
        assert snapshot["config"]["workers"] == 2

    def test_main_write_heavy_verify(self, capsys):
        exit_code = main(
            [
                "--n", "60",
                "--requests", "12",
                "--clients", "2",
                "--workers", "2",
                "--write-fraction", "0.4",
                "--no-io-model",
                "--verify",
            ]
        )
        assert exit_code == 0
        assert "verified" in capsys.readouterr().out


class TestSubscriberMode:
    def test_subscribers_receive_deltas_and_report_lag(self, small_engine):
        config = LoadConfig(
            clients=3,
            requests=30,
            write_fraction=0.4,
            pool_size=4,
            m=3,
            k=5,
            seed=17,
            subscribers=2,
            poll_interval=0.002,
        )
        with QueryService(small_engine, ServiceConfig(workers=2)) as service:
            report = asyncio.run(run_load(service, config))
        assert report.subscriptions == 2
        assert report.writes > 0
        assert report.deltas_received > 0
        assert report.delta_lag_p99 >= report.delta_lag_p50 >= 0.0
        # all subscriptions unwound cleanly at the end of the run.
        assert service.subscriptions.active == 0
        text = report.render()
        assert "deltas received" in text and "delta lag p99" in text

    def test_verify_audits_final_standing_results(self, small_engine):
        config = LoadConfig(
            clients=2,
            requests=20,
            write_fraction=0.4,
            pool_size=4,
            m=3,
            k=5,
            seed=17,
            subscribers=2,
            poll_interval=0.002,
            verify=True,
        )
        with QueryService(small_engine, ServiceConfig(workers=2)) as service:
            report = asyncio.run(run_load(service, config))
        assert report.subscriptions == 2
        # two of the verified counts are the subscriber final-state
        # audits; a StaleResultError would have propagated out of
        # asyncio.gather and failed this test.
        assert report.verified >= 2

    def test_subscriber_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(subscribers=-1)
        with pytest.raises(ValueError):
            LoadConfig(poll_interval=0.0)

    def test_main_subscriber_write_mix(self, capsys):
        exit_code = main(
            [
                "--n", "60",
                "--requests", "16",
                "--clients", "2",
                "--workers", "2",
                "--subscribers", "2",
                "--write-mix", "0.4",
                "--no-io-model",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2 subscribers" in out
        assert "40% writes" in out
        assert "delta lag p50" in out


class TestFaultProfileValidation:
    def test_unknown_profile_exits_with_usage_error(self, capsys):
        # satellite contract: a typo'd profile is a clean argparse
        # error naming the alternatives, never a stack trace.
        with pytest.raises(SystemExit) as excinfo:
            main(["--fault-profile", "flaky-dsik"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown fault profile 'flaky-dsik'" in err
        assert "flaky-disk" in err and "bad-sectors" in err

    def test_known_profile_still_accepted(self, capsys):
        exit_code = main(
            [
                "--n", "60", "--requests", "8", "--clients", "2",
                "--workers", "2", "--no-io-model",
                "--fault-profile", "low", "--fault-seed", "3",
            ]
        )
        assert exit_code == 0
        assert "chaos=low" in capsys.readouterr().out


class TestDurabilityFlags:
    def test_durable_run_then_warm_restart(self, capsys, tmp_path):
        state = tmp_path / "state"
        exit_code = main(
            [
                "--n", "60", "--requests", "10", "--clients", "2",
                "--workers", "2", "--write-fraction", "0.4",
                "--no-io-model", "--durability", str(state),
            ]
        )
        assert exit_code == 0
        first = capsys.readouterr().out
        assert "completed" in first
        exit_code = main(
            [
                "--requests", "6", "--clients", "2", "--workers", "2",
                "--no-io-model", "--recover-from", str(state),
                "--stats",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "recovered engine from" in out
        assert "commits / " in out
        snapshot = json.loads(out[out.index("{"):])
        recovery = snapshot["recovery"]
        assert recovery["last_recovery"]["recovered_epoch"] > 0

    def test_recover_plus_durability_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "--recover-from", str(tmp_path / "a"),
                    "--durability", str(tmp_path / "b"),
                ]
            )
        assert excinfo.value.code == 2
        assert "mutually" in capsys.readouterr().err

    def test_recover_from_empty_directory_is_a_clean_error(
        self, capsys, tmp_path
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["--recover-from", str(tmp_path / "void")])
        assert excinfo.value.code == 2
        assert "recovery" in capsys.readouterr().err
