"""Dominance relation, scores and the vectorized matrix."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.dominance import (
    DistanceVectorSource,
    DominanceMatrix,
    dominates,
    dominates_vectors,
    domination_score,
    equivalent,
    equivalent_vectors,
)

from tests.conftest import make_vector_space

_vec = st.lists(
    st.floats(min_value=0, max_value=10, allow_nan=False),
    min_size=3,
    max_size=3,
)


class TestDominatesVectors:
    def test_strictly_smaller_dominates(self):
        assert dominates_vectors([1, 1], [2, 2])

    def test_equal_does_not_dominate(self):
        assert not dominates_vectors([1, 2], [1, 2])

    def test_partial_improvement_dominates(self):
        assert dominates_vectors([1, 2], [1, 3])

    def test_incomparable(self):
        assert not dominates_vectors([1, 3], [2, 2])
        assert not dominates_vectors([2, 2], [1, 3])

    def test_never_both_directions(self):
        assert not (
            dominates_vectors([1, 2], [2, 1])
            and dominates_vectors([2, 1], [1, 2])
        )

    @settings(max_examples=60, deadline=None)
    @given(a=_vec, b=_vec)
    def test_antisymmetry_property(self, a, b):
        assert not (dominates_vectors(a, b) and dominates_vectors(b, a))

    @settings(max_examples=60, deadline=None)
    @given(a=_vec, b=_vec, c=_vec)
    def test_transitivity_property(self, a, b, c):
        if dominates_vectors(a, b) and dominates_vectors(b, c):
            assert dominates_vectors(a, c)

    @settings(max_examples=60, deadline=None)
    @given(a=_vec)
    def test_irreflexive(self, a):
        assert not dominates_vectors(a, a)

    @settings(max_examples=60, deadline=None)
    @given(a=_vec, b=_vec)
    def test_equivalence_excludes_dominance(self, a, b):
        if equivalent_vectors(a, b):
            assert not dominates_vectors(a, b)


class TestDistanceVectorSource:
    @pytest.fixture
    def setup(self):
        space = make_vector_space(n=40, dims=3, seed=0)
        return space, DistanceVectorSource(space, [0, 10, 20])

    def test_vector_dimension(self, setup):
        _space, source = setup
        assert len(source.vector(5)) == 3
        assert source.m == 3

    def test_query_object_has_zero_coordinate(self, setup):
        _space, source = setup
        assert source.vector(10)[1] == 0.0

    def test_caching_avoids_recomputation(self, setup):
        space, source = setup
        source.vector(7)
        before = space.metric.snapshot()
        source.vector(7)
        assert space.metric.delta_since(before) == 0
        assert source.known(7)

    def test_put_installs_external_vector(self, setup):
        space, source = setup
        source.put(9, (1.0, 2.0, 3.0))
        assert source.vector(9) == (1.0, 2.0, 3.0)

    def test_aggregate_distance(self, setup):
        _space, source = setup
        assert source.aggregate_distance(4) == pytest.approx(
            sum(source.vector(4))
        )

    def test_self_never_dominates(self, setup):
        _space, source = setup
        assert not source.dominates(3, 3)
        assert source.equivalent(3, 3)

    def test_domination_score_counts(self, setup):
        space, source = setup
        score = source.domination_score(0, space.object_ids)
        manual = sum(
            1
            for other in space.object_ids
            if other != 0
            and dominates_vectors(source.vector(0), source.vector(other))
        )
        assert score == manual


class TestDominanceMatrix:
    @pytest.fixture
    def setup(self):
        space = make_vector_space(n=60, dims=2, seed=1, grid=4)
        source = DistanceVectorSource(space, [0, 30])
        matrix = DominanceMatrix(source, list(space.object_ids))
        return space, source, matrix

    def test_matches_scalar_scores(self, setup):
        space, source, matrix = setup
        for object_id in range(0, 60, 7):
            assert matrix.score(object_id) == source.domination_score(
                object_id, space.object_ids
            )

    def test_deactivate_excludes_target(self, setup):
        _space, source, matrix = setup
        # find a dominated object and its dominator
        for a in range(60):
            before = matrix.score(a)
            if before > 0:
                break
        victims = [
            b
            for b in range(60)
            if b != a and dominates_vectors(source.vector(a), source.vector(b))
        ]
        matrix.deactivate(victims[0])
        assert matrix.score(a) == before - 1

    def test_score_of_foreign_object(self, setup):
        space, source, matrix = setup
        # an object outside the universe can still be scored against it
        partial = DominanceMatrix(source, list(range(30)))
        score = partial.score(45)
        manual = sum(
            1
            for other in range(30)
            if dominates_vectors(source.vector(45), source.vector(other))
        )
        assert score == manual


class TestFreeFunctions:
    def test_dominates_and_equivalent(self):
        space = make_vector_space(n=30, dims=2, seed=2, grid=2)
        queries = [0, 15]
        source = DistanceVectorSource(space, queries)
        for a in range(0, 30, 5):
            for b in range(0, 30, 5):
                assert dominates(space, queries, a, b) == source.dominates(
                    a, b
                )
                assert equivalent(space, queries, a, b) == source.equivalent(
                    a, b
                )

    def test_domination_score_default_universe(self):
        space = make_vector_space(n=25, dims=2, seed=3)
        queries = [0, 12]
        source = DistanceVectorSource(space, queries)
        assert domination_score(space, queries, 4) == (
            source.domination_score(4, space.object_ids)
        )
