"""Shared fixtures for the test suite.

Small, deterministic metric spaces and pre-built engines; the
integration tests layer random instances on top via their own seeds.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import (
    EuclideanMetric,
    ManhattanMetric,
    MetricSpace,
    TopKDominatingEngine,
)
from repro.metric.counting import CountingMetric
from repro.mtree import MTree
from repro.storage.buffer import BufferPool, LRUBuffer
from repro.storage.pages import PageManager


def make_vector_space(
    n: int,
    dims: int = 3,
    seed: int = 0,
    grid: int | None = None,
    metric=None,
) -> MetricSpace:
    """A random vector space; ``grid`` quantizes to force ties."""
    rng = np.random.default_rng(seed)
    points = rng.random((n, dims))
    if grid is not None:
        points = np.round(points * grid) / grid
    return MetricSpace(
        list(points),
        CountingMetric(metric or EuclideanMetric()),
        name=f"test-{n}x{dims}",
    )


def make_engine(
    n: int = 120,
    dims: int = 3,
    seed: int = 0,
    grid: int | None = None,
    node_capacity: int = 12,
) -> TopKDominatingEngine:
    space = make_vector_space(n, dims, seed, grid)
    return TopKDominatingEngine(
        space,
        index_options={"node_capacity": node_capacity},
        rng=random.Random(seed),
    )


@pytest.fixture
def small_space() -> MetricSpace:
    return make_vector_space(n=80, dims=3, seed=1)

@pytest.fixture
def tie_space() -> MetricSpace:
    """A grid-quantized space with many exact distance ties."""
    return make_vector_space(n=90, dims=2, seed=2, grid=4)


@pytest.fixture
def small_engine() -> TopKDominatingEngine:
    return make_engine(n=120, dims=3, seed=3)


@pytest.fixture
def tie_engine() -> TopKDominatingEngine:
    return make_engine(n=100, dims=2, seed=4, grid=4)


@pytest.fixture
def buffer_pool() -> BufferPool:
    return BufferPool(index_capacity=16, aux_capacity=64)


@pytest.fixture
def small_tree(small_space, buffer_pool) -> MTree:
    return MTree.build(
        small_space,
        buffer_pool.index_buffer,
        node_capacity=8,
        rng=random.Random(0),
    )


@pytest.fixture
def fresh_buffer() -> LRUBuffer:
    return LRUBuffer(PageManager(), capacity=32)
