"""PM-tree white-box tests: pivots, hyper-ring bounds, pruning wins.

The PM-tree's whole contract is "same answers, fewer distance
computations": every hyper-ring bound must actually lower-bound the
true distance (else answers change), node rings must cover their
subtrees (else pruning is unsound), and on the B²MS² skyline path the
rings must demonstrably prune — the claim the cross-backend benchmark
quantifies and these tests pin qualitatively.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.metric.base import MetricSpace
from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric
from repro.mtree import MTree
from repro.pmtree import PMTree
from repro.pmtree.pivots import choose_pivots
from repro.skyline.b2ms2 import metric_skyline
from repro.storage.buffer import BufferPool, LRUBuffer
from repro.storage.pages import PageManager

from .conftest import make_vector_space


def build_pmtree(space, seed=0, **kwargs) -> PMTree:
    buf = LRUBuffer(PageManager(), capacity=256)
    return PMTree.build(
        space,
        buf,
        node_capacity=8,
        rng=random.Random(seed),
        **kwargs,
    )


class TestPivotSelection:
    def test_deterministic_and_within_ids(self):
        space = make_vector_space(100, dims=3, seed=11)
        ids = list(range(100))
        rng_a, rng_b = random.Random(5), random.Random(5)
        pivots_a = choose_pivots(space, ids, 8, 64, rng_a)
        pivots_b = choose_pivots(space, ids, 8, 64, rng_b)
        assert pivots_a == pivots_b
        assert len(pivots_a) == 8
        assert len(set(pivots_a)) == 8
        assert set(pivots_a) <= set(ids)

    def test_small_sets_return_everything(self):
        space = make_vector_space(5, dims=2, seed=1)
        pivots = choose_pivots(
            space, list(range(5)), 8, 64, random.Random(0)
        )
        assert sorted(pivots) == list(range(5))

    def test_empty_and_zero_pivots(self):
        space = make_vector_space(10, dims=2, seed=1)
        assert choose_pivots(space, [], 8, 64, random.Random(0)) == []
        assert (
            choose_pivots(space, list(range(10)), 0, 64, random.Random(0))
            == []
        )


class TestHyperRingBounds:
    """Soundness: every emitted bound lower-bounds the true distance."""

    def _tree_and_space(self, n=120, seed=13):
        space = make_vector_space(n, dims=3, seed=seed)
        return build_pmtree(space, seed=seed), space

    def test_object_bounds_never_exceed_true_distance(self):
        tree, space = self._tree_and_space()
        for query in (0, 17, 55):
            flt = tree.query_filter(query)
            assert flt is not None
            for object_id in range(len(space)):
                bound = flt.object_bound(object_id)
                assert bound <= space.distance(query, object_id) + 1e-9

    def test_node_bounds_never_exceed_subtree_minimum(self):
        tree, space = self._tree_and_space()
        query = 29
        flt = tree.query_filter(query)
        for page_id, (mins, maxs) in tree._node_rings.items():
            bound = flt.node_bound(page_id)
            # the subtree's objects are exactly those whose leaf chain
            # passes through the page; recover them via the rings'
            # aggregation by checking every object against the ring.
            for object_id, rings in tree._object_rings.items():
                if object_id not in tree:
                    continue
                inside = all(
                    lo - 1e-9 <= r <= hi + 1e-9
                    for r, lo, hi in zip(rings, mins, maxs)
                )
                if inside:
                    assert (
                        bound
                        <= space.distance(query, object_id) + 1e-9
                    )

    def test_payload_queries_supported(self):
        tree, space = self._tree_and_space()
        payload = np.array([0.4, 0.6, 0.1])
        flt = tree.query_filter(payload)
        for object_id in range(0, len(space), 7):
            d = space.distance_to_payload(object_id, payload)
            assert flt.object_bound(object_id) <= d + 1e-9

    def test_skyline_bounds_lower_bound_distance_vectors(self):
        tree, space = self._tree_and_space()
        from repro.core.dominance import DistanceVectorSource

        query_ids = [3, 41, 77]
        source = DistanceVectorSource(space, query_ids)
        flt = tree.skyline_filter(query_ids, source)
        assert flt is not None
        for object_id in range(0, len(space), 5):
            bounds = flt.object_bounds(object_id)
            assert bounds is not None
            true_vec = [
                space.distance(object_id, q) for q in query_ids
            ]
            for b, t in zip(bounds, true_vec):
                assert b <= t + 1e-9


class TestRingMaintenance:
    def test_rings_rebuild_lazily_after_insert(self):
        space = make_vector_space(80, dims=3, seed=3)
        tree = build_pmtree(space, seed=3)
        tree.query_filter(0)  # forces the initial aggregation
        assert not tree._rings_dirty
        new_id = space.append(np.array([0.2, 0.9, 0.4]))
        tree.insert(new_id)
        assert tree._rings_dirty
        assert new_id in tree._object_rings
        flt = tree.query_filter(0)
        assert not tree._rings_dirty
        assert flt.object_bound(new_id) <= space.distance(0, new_id) + 1e-9

    def test_delete_keeps_bounds_conservative(self):
        space = make_vector_space(80, dims=3, seed=3)
        tree = build_pmtree(space, seed=3)
        tree.query_filter(0)
        tree.delete(40)
        # stale rings are only ever wider: still sound for survivors.
        flt = tree.query_filter(0)
        for object_id in tree.object_ids():
            assert (
                flt.object_bound(object_id)
                <= space.distance(0, object_id) + 1e-9
            )

    def test_reinsert_reuses_cached_object_rings(self):
        space = make_vector_space(80, dims=3, seed=3)
        tree = build_pmtree(space, seed=3)
        rings_before = tree._object_rings[25]
        count_before = space.metric.count
        tree.delete(25)
        tree.insert(25)
        # ring reuse: the only distances charged are the tree insert's.
        assert tree._object_rings[25] is rings_before
        insert_cost_with_rings = space.metric.count - count_before
        assert insert_cost_with_rings > 0  # the insert itself charges

    def test_invariants_hold_under_churn(self):
        space = make_vector_space(90, dims=3, seed=6)
        tree = build_pmtree(space, seed=6)
        rng = random.Random(6)
        for _ in range(20):
            victim = rng.choice(list(tree.object_ids()))
            tree.delete(victim)
            tree.insert(victim)
        tree.check_invariants()
        # and the rings are still sound afterwards.
        flt = tree.query_filter(1)
        for object_id in tree.object_ids():
            assert (
                flt.object_bound(object_id)
                <= space.distance(1, object_id) + 1e-9
            )


class TestAnswersAndSavings:
    def _paired_spaces(self, n=150, seed=21):
        rng = np.random.default_rng(seed)
        points = list(rng.random((n, 3)))

        def fresh():
            return MetricSpace(
                points, CountingMetric(EuclideanMetric())
            )

        return fresh(), fresh()

    def test_cursor_stream_matches_mtree(self):
        space_m, space_p = self._paired_spaces()
        mtree = MTree.build(
            space_m,
            LRUBuffer(PageManager(), capacity=256),
            node_capacity=8,
            rng=random.Random(2),
        )
        pmtree = PMTree.build(
            space_p,
            LRUBuffer(PageManager(), capacity=256),
            node_capacity=8,
            rng=random.Random(2),
        )
        stream_m = list(mtree.incremental_cursor(5))
        stream_p = list(pmtree.incremental_cursor(5))
        assert [d for _i, d in stream_m] == pytest.approx(
            [d for _i, d in stream_p]
        )

    def test_skyline_identical_with_fewer_distances(self):
        space_m, space_p = self._paired_spaces()
        mtree = MTree.build(
            space_m,
            LRUBuffer(PageManager(), capacity=256),
            node_capacity=8,
            rng=random.Random(2),
        )
        pmtree = PMTree.build(
            space_p,
            LRUBuffer(PageManager(), capacity=256),
            node_capacity=8,
            rng=random.Random(2),
        )
        query_ids = [2, 48, 101]
        base_m = space_m.metric.count
        sky_m = metric_skyline(mtree, query_ids)
        cost_m = space_m.metric.count - base_m
        base_p = space_p.metric.count
        sky_p = metric_skyline(pmtree, query_ids)
        cost_p = space_p.metric.count - base_p
        assert sorted(sky_m) == sorted(sky_p)
        # the headline claim: hyper-rings cut skyline distance
        # computations (each pruned entry saves its whole vector).
        assert cost_p < cost_m

    def test_zero_pivots_degrades_to_plain_mtree(self):
        space_m, space_p = self._paired_spaces()
        mtree = MTree.build(
            space_m,
            LRUBuffer(PageManager(), capacity=256),
            node_capacity=8,
            rng=random.Random(2),
        )
        pmtree = PMTree.build(
            space_p,
            LRUBuffer(PageManager(), capacity=256),
            node_capacity=8,
            rng=random.Random(2),
            num_pivots=0,
        )
        assert pmtree.query_filter(0) is None
        assert pmtree.skyline_filter([0, 1], None) is None
        base_m = space_m.metric.count
        sky_m = metric_skyline(mtree, [2, 48])
        cost_m = space_m.metric.count - base_m
        base_p = space_p.metric.count
        sky_p = metric_skyline(pmtree, [2, 48])
        cost_p = space_p.metric.count - base_p
        assert sorted(sky_m) == sorted(sky_p)
        assert cost_p == cost_m  # no rings, bit-identical cost

    def test_constructor_validation(self):
        space = make_vector_space(30, dims=2, seed=0)
        buf = LRUBuffer(PageManager(), capacity=64)
        with pytest.raises(ValueError, match="num_pivots"):
            PMTree(space, buf, num_pivots=-1)
        with pytest.raises(ValueError, match="pivot_sample"):
            PMTree(space, buf, pivot_sample=0)
