"""Serving-layer recovery: warm restart, resync deltas, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import open_engine
from repro.core.brute_force import brute_force_scores
from repro.service import QueryService, ServiceConfig

from tests.conftest import make_vector_space

DIMS = 3
QUERY = [2, 7, 13]
K = 4


def durable_service(tmp_path):
    space = make_vector_space(n=60, dims=DIMS, seed=5)
    engine = open_engine(
        space, seed=5, durability=str(tmp_path / "state")
    )
    return QueryService(engine, ServiceConfig(workers=2))


def oracle_pairs(engine, query_ids, k):
    truth = brute_force_scores(
        engine.space, query_ids, universe=sorted(engine.tree.object_ids())
    )
    ranked = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


def restart(tmp_path):
    """Recover the engine and stand up a fresh service over it."""
    engine = open_engine(recover_from=str(tmp_path / "state"))
    return QueryService(engine, ServiceConfig(workers=2))


class TestWarmRestart:
    def test_restore_reregisters_and_emits_resync(self, tmp_path):
        with durable_service(tmp_path) as service:
            service.subscribe_sync(QUERY, K)
            rng = np.random.default_rng(8)
            for _ in range(5):
                service.insert_sync(rng.random(DIMS))
            service.engine.checkpoint()

        with restart(tmp_path) as revived:
            restored = revived.restore_subscriptions()
            assert len(restored) == 1
            (subscription,) = restored
            q = subscription.maintainer.query
            assert (list(q.query_ids), q.k) == (sorted(QUERY), K)
            deltas = revived.poll_sync(subscription)
            assert len(deltas) == 1
            assert deltas[0].kind == "resync"
            served = [
                (item.object_id, item.score)
                for item in deltas[0].result
            ]
            assert served == oracle_pairs(revived.engine, QUERY, K)
            # post-restart writes keep flowing through the restored
            # standing query like any live subscription.
            revived.insert_sync(np.zeros(DIMS))
            revived.poll_sync(subscription)
            assert [
                (item.object_id, item.score)
                for item in subscription.result
            ] == oracle_pairs(revived.engine, QUERY, K)

    def test_restore_is_a_noop_for_volatile_engines(self, small_engine):
        with QueryService(small_engine, ServiceConfig(workers=1)) as svc:
            assert svc.restore_subscriptions() == []

    def test_restored_manifest_stays_one_to_one(self, tmp_path):
        # restore retires the recovered sid and registers a fresh one:
        # a second crash/recover cycle must still see exactly one entry.
        with durable_service(tmp_path) as service:
            service.subscribe_sync(QUERY, K)
            service.engine.checkpoint()
        with restart(tmp_path) as revived:
            revived.restore_subscriptions()
            assert len(
                revived.engine.durability.standing_manifest()
            ) == 1
            revived.engine.checkpoint()
        with restart(tmp_path) as again:
            assert len(again.engine.last_recovery.standing_queries) == 1
            assert len(again.restore_subscriptions()) == 1


class TestMetrics:
    def test_snapshot_carries_the_recovery_section(self, tmp_path):
        with durable_service(tmp_path) as service:
            rng = np.random.default_rng(9)
            for _ in range(3):
                service.insert_sync(rng.random(DIMS))
        with restart(tmp_path) as revived:
            snap = revived.snapshot()
            recovery = snap["recovery"]
            assert recovery["directory"] == str(tmp_path / "state")
            last = recovery["last_recovery"]
            assert last["recovered_epoch"] == 3
            assert last["replayed_commits"] == 3
            assert last["seconds"] >= 0
            assert recovery["wal"]["fsync_policy"] == "commit"

    def test_volatile_engines_omit_the_recovery_section(self, small_engine):
        with QueryService(small_engine, ServiceConfig(workers=1)) as svc:
            assert svc.snapshot()["recovery"] is None

    def test_recovery_spans_are_traced(self, tmp_path):
        from repro.obs.trace import Tracer

        with durable_service(tmp_path) as service:
            service.insert_sync(np.zeros(DIMS))
        tracer = Tracer()
        with tracer.trace("restart"):
            open_engine(recover_from=str(tmp_path / "state"))
        names = {span.name for span in tracer.spans()}
        assert {"recovery.open", "recovery.replay"} <= names


class TestWriteDurability:
    def test_service_writes_survive_a_restart(self, tmp_path):
        with durable_service(tmp_path) as service:
            rng = np.random.default_rng(10)
            inserted = [
                service.insert_sync(rng.random(DIMS)) for _ in range(4)
            ]
            service.delete_sync(inserted[0])
            expected = sorted(service.engine.tree.object_ids())
        with restart(tmp_path) as revived:
            assert sorted(revived.engine.tree.object_ids()) == expected
            response = revived.query_sync(QUERY, K)
            assert [
                (item.object_id, item.score) for item in response.results
            ] == oracle_pairs(revived.engine, QUERY, K)
