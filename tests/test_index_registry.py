"""The index-backend registry and the facade's selection path.

Covers the PR's API-surface contract: typed unknown-index errors that
enumerate what is registered, third-party registration reaching the
engine, per-backend option validation, deprecated spellings/kwargs
warning exactly once each, and the capability gates that route
algorithms away from backends that cannot serve them.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro._compat import canonical_index_name
from repro.api import open_engine
from repro.core.engine import TopKDominatingEngine
from repro.index import (
    BackendSpec,
    UnknownIndexError,
    available_backends,
    get_backend,
    register_backend,
)
from repro.index.registry import _REGISTRY
from repro.mtree.tree import MTree

from .conftest import make_vector_space


class TestRegistry:
    def test_builtins_are_registered(self):
        assert available_backends() == ("mtree", "pmtree", "vptree")

    def test_unknown_name_is_typed_and_lists_backends(self):
        with pytest.raises(UnknownIndexError) as exc_info:
            get_backend("rtree")
        message = str(exc_info.value)
        assert "rtree" in message
        for name in available_backends():
            assert name in message
        # pre-registry callers caught ValueError; keep that working.
        assert isinstance(exc_info.value, ValueError)
        assert exc_info.value.name == "rtree"
        assert exc_info.value.registered == available_backends()

    def test_engine_raises_the_typed_error(self, small_space):
        with pytest.raises(UnknownIndexError, match="registered backends"):
            TopKDominatingEngine(small_space, index="rtree")

    def test_duplicate_registration_needs_replace(self):
        spec = get_backend("mtree")
        with pytest.raises(ValueError, match="already registered"):
            register_backend(spec)
        register_backend(spec, replace=True)  # no-op override is fine

    def test_names_must_be_canonical(self):
        spec = get_backend("mtree")
        for bad_name in ("MTree", "pm-tree", "pm_tree", ""):
            bad = BackendSpec(
                name=bad_name,
                description=spec.description,
                capabilities=spec.capabilities,
                builder=spec.builder,
                options=spec.options,
            )
            with pytest.raises(ValueError, match="lower-case"):
                register_backend(bad)

    def test_unknown_option_fails_fast_naming_valid_ones(self, small_space):
        with pytest.raises(TypeError, match="leaf_capacity"):
            open_engine(
                small_space,
                index="vptree",
                index_options={"node_capacity": 8},
            )

    def test_pmtree_rejects_bulk_load_with_guidance(self, small_space):
        with pytest.raises(TypeError, match="bulk_load"):
            open_engine(
                small_space,
                index="pmtree",
                index_options={"bulk_load": True},
            )


class TestThirdPartyBackend:
    def test_registered_backend_builds_through_the_facade(self):
        spec = BackendSpec(
            name="mtreealias",
            description="test-only alias of the M-tree",
            capabilities=frozenset({"insert", "delete", "skyline"}),
            builder=lambda space, buffer, rng, options: MTree.build(
                space, buffer, rng=rng
            ),
            options=(),
        )
        register_backend(spec)
        try:
            assert "mtreealias" in available_backends()
            space = make_vector_space(60, dims=2, seed=9)
            engine = open_engine(space, seed=9, index="mtreealias")
            assert engine.index_kind == "mtreealias"
            results, _ = engine.top_k_dominating([0, 7], 3)
            reference_engine = open_engine(
                make_vector_space(60, dims=2, seed=9), seed=9
            )
            reference, _ = reference_engine.top_k_dominating([0, 7], 3)
            assert [r.object_id for r in results] == [
                r.object_id for r in reference
            ]
        finally:
            _REGISTRY.pop("mtreealias", None)


class TestDeprecatedSpellings:
    def test_cased_and_hyphenated_names_warn_and_resolve(self):
        for spelling in ("PM-Tree", "pm_tree", "MTREE", "vp-tree"):
            with pytest.warns(DeprecationWarning, match="spelling"):
                name = canonical_index_name(spelling, "test")
            assert name == spelling.lower().replace("-", "").replace(
                "_", ""
            )

    def test_canonical_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for name in available_backends():
                assert canonical_index_name(name, "test") == name

    def test_engine_accepts_deprecated_spelling(self, small_space):
        with pytest.warns(DeprecationWarning, match="spelling"):
            engine = TopKDominatingEngine(small_space, index="M-Tree")
        assert engine.index_kind == "mtree"

    def test_non_string_index_is_a_type_error(self, small_space):
        with pytest.raises(TypeError, match="backend name string"):
            TopKDominatingEngine(small_space, index=3)

    def test_legacy_kwargs_warn_and_flow_into_options(self):
        space = make_vector_space(60, dims=2, seed=4)
        with pytest.warns(DeprecationWarning, match="node_capacity"):
            engine = open_engine(space, seed=4, node_capacity=6)
        assert engine.index_options["node_capacity"] == 6
        assert engine.tree.node_capacity == 6

    def test_both_spellings_is_a_type_error(self):
        space = make_vector_space(60, dims=2, seed=4)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="node_capacity"):
                open_engine(
                    space,
                    seed=4,
                    node_capacity=6,
                    index_options={"node_capacity": 8},
                )


class TestCapabilityGates:
    def test_skyline_algorithms_refused_without_capability(self):
        space = make_vector_space(60, dims=2, seed=5)
        engine = open_engine(space, seed=5, index="vptree")
        for algorithm in ("sba", "aba"):
            with pytest.raises(ValueError, match="skyline"):
                engine.top_k_dominating([0, 7], 3, algorithm=algorithm)

    def test_static_backend_refuses_inserts(self):
        space = make_vector_space(60, dims=2, seed=5)
        engine = open_engine(space, seed=5, index="vptree")
        with pytest.raises(NotImplementedError, match="static"):
            engine.insert_object((0.5, 0.5))

    def test_durability_requires_mtree(self, tmp_path):
        space = make_vector_space(60, dims=2, seed=5)
        for backend in ("pmtree", "vptree"):
            engine = open_engine(space, seed=5, index=backend)
            with pytest.raises(NotImplementedError, match="mtree"):
                from repro.recovery import enable_durability

                enable_durability(engine, str(tmp_path / backend))

    def test_insert_capable_backends_accept_writes(self):
        for backend in ("mtree", "pmtree"):
            space = make_vector_space(60, dims=2, seed=5)
            engine = open_engine(space, seed=5, index=backend)
            new_id = engine.insert_object((0.5, 0.5))
            assert new_id in engine.tree
