"""M-tree deletion behaviour (leaf-entry removal, SBA/ABA's need)."""

import random

import pytest

from repro.mtree import IncrementalNNCursor, MTree, knn_query, range_query
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


@pytest.fixture
def tree_and_space():
    space = make_vector_space(n=150, dims=3, seed=6)
    buf = LRUBuffer(PageManager(), capacity=64)
    tree = MTree.build(space, buf, node_capacity=8, rng=random.Random(6))
    return tree, space


class TestDelete:
    def test_delete_removes_object(self, tree_and_space):
        tree, _ = tree_and_space
        assert tree.delete(10)
        assert 10 not in tree
        assert len(tree) == 149

    def test_delete_absent_returns_false(self, tree_and_space):
        tree, _ = tree_and_space
        tree.delete(10)
        assert not tree.delete(10)

    def test_queries_exclude_deleted(self, tree_and_space):
        tree, space = tree_and_space
        victim = knn_query(tree, 0, 2)[1][0]
        tree.delete(victim)
        assert victim not in {i for i, _ in knn_query(tree, 0, 10)}
        assert victim not in {i for i, _ in range_query(tree, 0, 10.0)}
        assert victim not in {i for i, _ in IncrementalNNCursor(tree, 0)}

    def test_remaining_results_still_exact(self, tree_and_space):
        tree, space = tree_and_space
        for victim in [5, 50, 99]:
            tree.delete(victim)
        survivors = [i for i in space.object_ids if i not in {5, 50, 99}]
        expected = sorted(
            (space.distance(0, i), i) for i in survivors
        )[:7]
        got = knn_query(tree, 0, 7)
        assert [d for _i, d in got] == pytest.approx(
            [d for d, _i in expected]
        )

    def test_invariants_after_many_deletions(self, tree_and_space):
        tree, _ = tree_and_space
        for victim in range(0, 150, 3):
            assert tree.delete(victim)
        tree.check_invariants()
        assert len(tree) == 100

    def test_reinsert_after_delete(self, tree_and_space):
        tree, _ = tree_and_space
        tree.delete(42)
        tree.insert(42)
        tree.check_invariants()
        assert 42 in tree
        assert knn_query(tree, 42, 1)[0][1] == 0.0

    def test_delete_everything(self):
        space = make_vector_space(n=30, dims=2, seed=7)
        buf = LRUBuffer(PageManager(), capacity=32)
        tree = MTree.build(space, buf, node_capacity=4)
        for i in range(30):
            assert tree.delete(i)
        assert len(tree) == 0
        assert list(IncrementalNNCursor(tree, space.payload(0))) == []
