"""Fault injection and checksumming on the simulated storage layer."""

import pytest

from repro.faults.chaos import ChaosConfig, FaultInjector
from repro.faults.checksum import CORRUPTION_MASK, payload_checksum
from repro.faults.errors import (
    PermanentPageError,
    StorageCorruption,
    TransientPageError,
)
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager


def make_injector(**overrides):
    """A no-sleep injector; backoff and injected latency cost nothing."""
    slept = []
    config = ChaosConfig(**overrides)
    injector = FaultInjector(config, sleep=slept.append)
    injector.slept = slept
    return injector


class TestChecksums:
    def test_checksum_is_stable_and_payload_sensitive(self):
        assert payload_checksum({"a": 1}) == payload_checksum({"a": 1})
        assert payload_checksum({"a": 1}) != payload_checksum({"a": 2})

    def test_checksum_handles_unpicklable_payloads(self):
        payload = lambda: None  # noqa: E731 - deliberately unpicklable
        assert isinstance(payload_checksum(payload), int)

    def test_no_injector_means_no_crc(self):
        mgr = PageManager()
        page_id = mgr.allocate(payload=[1, 2, 3])
        assert mgr.read_page(page_id).crc is None

    def test_attach_stamps_existing_pages(self):
        mgr = PageManager()
        page_id = mgr.allocate(payload=[1, 2, 3])
        mgr.attach_injector(make_injector())
        page = mgr.read_page(page_id)  # verifies cleanly
        assert page.crc == payload_checksum([1, 2, 3])

    def test_write_restamps_changed_payload(self):
        mgr = PageManager(injector=make_injector())
        page_id = mgr.allocate(payload="old")
        page = mgr.read_page(page_id)
        page.payload = "new"
        mgr.write_page(page)
        assert mgr.read_page(page_id).payload == "new"

    def test_tampered_payload_detected_on_read(self):
        mgr = PageManager(name="tamper-disk", injector=make_injector())
        page_id = mgr.allocate(payload="original")
        mgr.read_page(page_id).payload = "tampered"  # no write_page
        with pytest.raises(StorageCorruption) as excinfo:
            mgr.read_page(page_id)
        assert excinfo.value.disk == "tamper-disk"
        assert excinfo.value.page_id == page_id

    def test_tampered_crc_detected_on_read(self):
        mgr = PageManager(injector=make_injector())
        page_id = mgr.allocate(payload="x")
        mgr.read_page(page_id).crc ^= CORRUPTION_MASK
        with pytest.raises(StorageCorruption):
            mgr.read_page(page_id)


class TestInjectedCorruption:
    def test_injected_corruption_surfaces_typed(self):
        injector = make_injector(corrupt_p=1.0)
        mgr = PageManager(name="d", injector=injector)
        page_id = mgr.allocate(payload="v")
        with pytest.raises(StorageCorruption) as excinfo:
            mgr.read_page(page_id)
        assert excinfo.value.page_id == page_id
        assert injector.counters()["storage.corrupt"] == 1

    def test_corruption_is_not_retried_by_the_buffer(self):
        injector = make_injector(corrupt_p=1.0)
        mgr = PageManager(injector=injector)
        buffer = LRUBuffer(mgr, capacity=8)
        page_id = mgr.allocate(payload="v")
        with pytest.raises(StorageCorruption):
            buffer.get(page_id)
        assert "storage.retry" not in injector.counters()

    def test_corruption_is_sticky_across_reads(self):
        # one corrupting read, then a clean config: the damage stays on
        # the (simulated) disk, so every later read keeps failing.
        injector = make_injector(corrupt_p=1.0)
        mgr = PageManager(injector=injector)
        page_id = mgr.allocate(payload="v")
        with pytest.raises(StorageCorruption):
            mgr.read_page(page_id)
        mgr.attach_injector(FaultInjector(ChaosConfig()))
        # re-attaching re-stamps, so emulate the persisted damage again
        mgr._pages[page_id].crc ^= CORRUPTION_MASK
        for _ in range(3):
            with pytest.raises(StorageCorruption):
                mgr.read_page(page_id)


class TestInjectedReadFaults:
    def test_permanent_fault_surfaces_without_retries(self):
        injector = make_injector(read_permanent_p=1.0)
        mgr = PageManager(injector=injector)
        buffer = LRUBuffer(mgr, capacity=8)
        page_id = mgr.allocate(payload="v")
        with pytest.raises(PermanentPageError) as excinfo:
            buffer.get(page_id)
        assert excinfo.value.page_id == page_id
        assert "storage.retry" not in injector.counters()

    def test_certain_transient_fault_exhausts_retry_budget(self):
        injector = make_injector(
            read_transient_p=1.0, retry_max_attempts=4
        )
        mgr = PageManager(injector=injector)
        buffer = LRUBuffer(mgr, capacity=8)
        page_id = mgr.allocate(payload="v")
        with pytest.raises(TransientPageError):
            buffer.get(page_id)
        counters = injector.counters()
        assert counters["storage.read_transient"] == 4
        assert counters["storage.retry"] == 3
        # each retry backed off through the injector's sleep hook.
        assert len(injector.slept) == 3

    def test_transient_faults_are_transparent_to_the_caller(self):
        class FailTwiceInjector(FaultInjector):
            def __init__(self):
                super().__init__(ChaosConfig(), sleep=lambda _s: None)
                self.failures_left = 2

            def on_physical_read(self, disk, page):
                if self.failures_left:
                    self.failures_left -= 1
                    self._record(
                        "storage", "read_transient", f"{disk}:{page.page_id}"
                    )
                    raise TransientPageError(disk, page.page_id)

        injector = FailTwiceInjector()
        mgr = PageManager(injector=injector)
        buffer = LRUBuffer(mgr, capacity=8)
        page_id = mgr.allocate(payload={"k": "v"})
        assert buffer.get(page_id).payload == {"k": "v"}
        counters = injector.counters()
        assert counters["storage.read_transient"] == 2
        assert counters["storage.retry"] == 2
        # the fault was absorbed: the page is resident, later reads hit.
        assert buffer.get(page_id).payload == {"k": "v"}
        assert counters == injector.counters()

    def test_injected_latency_uses_sleep_hook(self):
        injector = make_injector(
            storage_latency_p=1.0, storage_latency_seconds=0.25
        )
        mgr = PageManager(injector=injector)
        page_id = mgr.allocate(payload="v")
        mgr.read_page(page_id)
        assert injector.slept == [0.25]
        assert injector.counters()["storage.latency"] == 1

    def test_allocation_never_faults(self):
        # new_page goes through allocate_page, not the read path, so a
        # disk with certain read faults still allocates cleanly.
        injector = make_injector(read_transient_p=1.0, read_permanent_p=1.0)
        mgr = PageManager(injector=injector)
        buffer = LRUBuffer(mgr, capacity=8)
        page = buffer.new_page(payload="fresh")
        assert page.payload == "fresh"
        assert injector.fault_log() == ()

    def test_fault_log_targets_name_disk_and_page(self):
        injector = make_injector(read_transient_p=1.0, retry_max_attempts=1)
        mgr = PageManager(name="named-disk", injector=injector)
        page_id = mgr.allocate(payload="v")
        with pytest.raises(TransientPageError):
            mgr.read_page(page_id)
        assert injector.fault_log() == (
            ("storage", "read_transient", f"named-disk:{page_id}"),
        )
