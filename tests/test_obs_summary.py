"""Tests for span analysis: self-attribution, phase shares, top-N."""

from __future__ import annotations

import pytest

from repro.obs import trace
from repro.obs.summary import (
    AXES,
    format_summary,
    format_top,
    phase_summary,
    top_queries,
)
from repro.obs.trace import CostSnapshot, Tracer
from repro.storage.stats import PAGE_FAULT_COST_SECONDS


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def _record_nested() -> Tracer:
    """root (6 s wall) > child (2 s wall); child does 3 of root's 5 faults."""
    counters = {"faults": 0, "dist": 0, "exact": 0}

    def probe() -> CostSnapshot:
        return CostSnapshot(
            page_faults=counters["faults"],
            distance_computations=counters["dist"],
            exact_score_computations=counters["exact"],
        )

    tracer = Tracer(clock=FakeClock())
    with tracer.trace("root", probe=probe):
        counters["faults"] += 2
        counters["dist"] += 10
        with trace.span("child"):
            counters["faults"] += 3
            counters["exact"] += 1
        trace.event("instant")  # excluded from attribution
    return tracer


class TestPhaseSummary:
    def test_self_attribution_subtracts_children(self):
        rows = {r.name: r for r in phase_summary(_record_nested().export())}
        root, child = rows["root"], rows["child"]
        # fake clock reads: root start 1, child 2..3, event at 4,
        # root end 5 -> root wall 4 s minus the child's 1 s (the
        # instant has no extent and is not subtracted).
        assert root.wall_seconds == pytest.approx(4.0)
        assert root.self_seconds == pytest.approx(3.0)
        assert child.self_seconds == pytest.approx(1.0)
        assert root.self_costs["page_faults"] == 2
        assert child.self_costs["page_faults"] == 3
        assert root.self_costs["distance_computations"] == 10
        assert child.self_costs["exact_score_computations"] == 1
        assert root.self_io_seconds == pytest.approx(
            2 * PAGE_FAULT_COST_SECONDS
        )

    def test_self_never_negative(self):
        # a child reporting more cost than its parent (possible when the
        # parent has no probe) must clamp to zero, not go negative.
        spans = [
            {
                "trace_id": 1, "span_id": 1, "parent_id": None,
                "name": "p", "ph": "X", "start": 0.0, "end": 1.0,
                "thread": 1, "args": {}, "costs": None,
            },
            {
                "trace_id": 1, "span_id": 2, "parent_id": 1,
                "name": "c", "ph": "X", "start": 0.0, "end": 2.0,
                "thread": 1, "args": {},
                "costs": {"page_faults": 9},
            },
        ]
        rows = {r.name: r for r in phase_summary(spans)}
        assert rows["p"].self_seconds == 0.0
        assert rows["p"].self_costs["page_faults"] == 0

    def test_ordering_by_self_cpu(self):
        rows = phase_summary(_record_nested().export())
        assert [r.name for r in rows] == ["root", "child"]

    def test_axis_validation(self):
        (row, *_rest) = phase_summary(_record_nested().export())
        for axis in AXES:
            row.axis(axis)
        with pytest.raises(ValueError):
            row.axis("bogus")


class TestFormatSummary:
    def test_renders_all_axes(self):
        text = format_summary(phase_summary(_record_nested().export()))
        assert "cpu%" in text and "io%" in text and "dist%" in text
        assert "root" in text and "child" in text
        assert "total (self)" in text

    def test_dropped_warning(self):
        text = format_summary([], dropped=3)
        assert "3 span(s) dropped" in text

    def test_empty_totals_render_dashes(self):
        text = format_summary(
            phase_summary(
                [
                    {
                        "trace_id": 1, "span_id": 1, "parent_id": None,
                        "name": "idle", "ph": "X", "start": 0.0,
                        "end": 0.0, "thread": 1, "args": {},
                        "costs": None,
                    }
                ]
            )
        )
        assert "-" in text  # zero totals must not divide by zero


class TestTopQueries:
    def _two_traces(self) -> Tracer:
        counters = {"faults": 0}

        def probe() -> CostSnapshot:
            return CostSnapshot(page_faults=counters["faults"])

        tracer = Tracer(clock=FakeClock())
        with tracer.trace("req", args={"algorithm": "pba2"}, probe=probe):
            counters["faults"] += 1
        with tracer.trace("req", args={"algorithm": "sba"}, probe=probe):
            counters["faults"] += 5
        return tracer

    def test_ranking_by_io(self):
        rows = top_queries(self._two_traces().export(), axis="io")
        assert [r.args["algorithm"] for r in rows] == ["sba", "pba2"]
        assert rows[0].io_seconds == pytest.approx(
            5 * PAGE_FAULT_COST_SECONDS
        )

    def test_limit(self):
        rows = top_queries(self._two_traces().export(), axis="cpu", limit=1)
        assert len(rows) == 1

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            top_queries([], axis="bogus")

    def test_format_top(self):
        rows = top_queries(self._two_traces().export(), axis="distance")
        text = format_top(rows, axis="distance")
        assert "top 2 traces by distance" in text
        assert "algorithm=sba" in text
