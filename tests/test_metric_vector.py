"""Unit and property tests for the Lp-norm metrics."""

import math

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.metric.vector import (
    ChebyshevMetric,
    EuclideanMetric,
    LpMetric,
    ManhattanMetric,
    WeightedEuclideanMetric,
)

_vec = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=3,
    max_size=3,
)


class TestKnownValues:
    def test_euclidean_345(self):
        assert EuclideanMetric()([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert ManhattanMetric()([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert ChebyshevMetric()([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_l3(self):
        d = LpMetric(p=3)([0, 0], [1, 1])
        assert d == pytest.approx(2 ** (1 / 3))

    def test_weighted_euclidean(self):
        metric = WeightedEuclideanMetric([1.0, 0.0])
        assert metric([0, 5], [3, 100]) == pytest.approx(3.0)

    def test_names(self):
        assert EuclideanMetric().name == "euclidean"
        assert ManhattanMetric().name == "manhattan"
        assert ChebyshevMetric().name == "chebyshev"
        assert LpMetric(p=4).name == "l4"


class TestValidation:
    def test_p_below_one_rejected(self):
        with pytest.raises(ValueError):
            LpMetric(p=0.5)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EuclideanMetric()([1, 2], [1, 2, 3])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedEuclideanMetric([1.0, -1.0])

    def test_weight_dimension_enforced(self):
        metric = WeightedEuclideanMetric([1.0, 1.0])
        with pytest.raises(ValueError):
            metric([1, 2, 3], [1, 2, 3])


@pytest.mark.parametrize(
    "metric",
    [EuclideanMetric(), ManhattanMetric(), ChebyshevMetric(), LpMetric(p=3)],
    ids=lambda m: m.name,
)
class TestMetricAxiomsProperty:
    @settings(max_examples=50, deadline=None)
    @given(a=_vec, b=_vec)
    def test_symmetry_and_positivity(self, metric, a, b):
        dab = metric(a, b)
        assert dab >= 0
        assert dab == pytest.approx(metric(b, a))

    @settings(max_examples=50, deadline=None)
    @given(a=_vec)
    def test_reflexivity(self, metric, a):
        assert metric(a, a) == pytest.approx(0.0)

    @settings(max_examples=50, deadline=None)
    @given(a=_vec, b=_vec, c=_vec)
    def test_triangle_inequality(self, metric, a, b, c):
        assert metric(a, b) <= metric(a, c) + metric(c, b) + 1e-7


@settings(max_examples=50, deadline=None)
@given(a=_vec, b=_vec)
def test_lp_monotone_in_p(a, b):
    """L_p norms decrease (weakly) as p grows for the same vectors."""
    d1 = ManhattanMetric()(a, b)
    d2 = EuclideanMetric()(a, b)
    dinf = ChebyshevMetric()(a, b)
    assert d1 >= d2 - 1e-9 >= dinf - 2e-9
