"""JSON log lines and their trace correlation.

The one law that matters: a record emitted *inside* a traced span
carries that span's ``trace_id``/``span_id`` so logs and trace exports
join on the same identifiers; outside any span the keys are absent,
not null-padded.
"""

from __future__ import annotations

import io
import json
import logging

from repro.obs.logging import JsonLogFormatter, configure_json_logging
from repro.obs.trace import Tracer


def _fresh_logger(name: str) -> logging.Logger:
    logger = logging.getLogger(name)
    logger.handlers.clear()
    logger.propagate = False
    return logger


class TestCorrelation:
    def test_record_inside_span_carries_trace_ids(self):
        stream = io.StringIO()
        logger = _fresh_logger("repro.test.correlated")
        handler = configure_json_logging(stream=stream, logger=logger)
        tracer = Tracer()
        try:
            with tracer.trace("request") as span:
                logger.info("inside")
            logger.info("outside")
        finally:
            logger.removeHandler(handler)
        inside, outside = [
            json.loads(line)
            for line in stream.getvalue().strip().splitlines()
        ]
        assert inside["message"] == "inside"
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        assert "trace_id" not in outside
        assert "span_id" not in outside

    def test_log_lines_join_against_the_exported_trace(self):
        stream = io.StringIO()
        logger = _fresh_logger("repro.test.join")
        handler = configure_json_logging(stream=stream, logger=logger)
        tracer = Tracer()
        try:
            with tracer.trace("outer"):
                with tracer.trace("inner"):
                    logger.info("deep")
        finally:
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue().strip())
        spans = {span.span_id: span for span in tracer.spans()}
        assert record["span_id"] in spans
        assert spans[record["span_id"]].name == "inner"
        assert record["trace_id"] == spans[record["span_id"]].trace_id


class TestFormatter:
    def test_payload_shape_and_extras(self):
        formatter = JsonLogFormatter()
        logger = _fresh_logger("repro.test.extras")
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(formatter)
        logger.addHandler(handler)
        logger.warning(
            "slow repair", extra={"object_id": 42, "repair": 7}
        )
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.test.extras"
        assert payload["message"] == "slow repair"
        assert payload["object_id"] == 42
        assert payload["repair"] == 7
        assert isinstance(payload["ts"], float)

    def test_exception_and_unserialisable_extra(self):
        formatter = JsonLogFormatter()
        logger = _fresh_logger("repro.test.exc")
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(formatter)
        logger.addHandler(handler)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed", extra={"payload": {1, 2}})
        record = json.loads(stream.getvalue())
        assert "RuntimeError: boom" in record["exc_info"]
        # sets are not JSON types; default=str keeps the line emittable
        assert "payload" in record

    def test_configure_targets_repro_root_by_default(self):
        stream = io.StringIO()
        handler = configure_json_logging(stream=stream)
        root = logging.getLogger("repro")
        try:
            assert handler in root.handlers
            logging.getLogger("repro.child").info("hello")
            assert json.loads(stream.getvalue())["message"] == "hello"
        finally:
            root.removeHandler(handler)
