"""End-to-end tests of :class:`repro.service.QueryService`."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.brute_force import brute_force_scores
from repro.service import (
    Overloaded,
    QueryRequest,
    QueryService,
    ReadWriteLock,
    ServiceConfig,
    StaleResultError,
)

QUERY = [3, 17, 42]
K = 5


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def service(small_engine):
    with QueryService(small_engine, ServiceConfig(workers=2)) as svc:
        yield svc


class TestQueryPath:
    def test_matches_direct_engine_execution(self, small_engine, service):
        response = run(service.query(QUERY, K))
        expected, _stats = small_engine.top_k_dominating(sorted(QUERY), K)
        assert response.results == expected
        assert not response.cached and not response.coalesced
        assert response.epoch == 0
        assert response.latency_seconds > 0.0
        assert response.stats.distance_computations > 0

    def test_query_order_is_normalized(self, service):
        first = run(service.query([42, 3, 17], K))
        second = run(service.query([17, 42, 3], K))
        assert second.cached, "permuted Q must hit the same cache entry"
        assert second.results == first.results

    def test_repeat_query_is_a_cache_hit(self, service):
        cold = run(service.query(QUERY, K))
        warm = run(service.query(QUERY, K))
        assert not cold.cached and warm.cached
        assert warm.results == cold.results
        assert warm.epoch == cold.epoch
        assert service.metrics.cold_executions == 1

    def test_different_k_is_not_a_cache_hit(self, service):
        run(service.query(QUERY, K))
        other = run(service.query(QUERY, K + 1))
        assert not other.cached
        assert len(other.results) == K + 1

    def test_concurrent_identical_queries_execute_once(self, service):
        async def burst():
            return await asyncio.gather(
                *(service.query(QUERY, K) for _ in range(6))
            )

        responses = run(burst())
        assert service.metrics.cold_executions == 1
        baseline = responses[0].results
        assert all(r.results == baseline for r in responses)
        # everyone but the leader was served for free, one way or the
        # other (follower of the flight, or cache once it landed).
        assert (
            sum(r.cached or r.coalesced for r in responses)
            == len(responses) - 1
        )

    def test_query_sync_equivalent(self, small_engine, service):
        response = service.query_sync(QUERY, K)
        expected, _stats = small_engine.top_k_dominating(sorted(QUERY), K)
        assert response.results == expected
        assert service.query_sync(QUERY, K).cached

    def test_unknown_algorithm_raises_and_counts_failure(self, service):
        with pytest.raises(ValueError):
            run(service.query(QUERY, K, algorithm="nope"))
        assert service.metrics.failures == 1


class TestWritesInvalidate:
    def test_insert_bumps_epoch_and_flushes(self, small_engine, service):
        cold = run(service.query(QUERY, K))
        payload = small_engine.space.payload(0) * 0.5
        run(service.insert(payload))
        after = run(service.query(QUERY, K))
        assert not after.cached, "cache must not survive an insert"
        assert after.epoch == cold.epoch + 1
        expected = brute_force_scores(
            small_engine.space,
            sorted(QUERY),
            universe=list(small_engine.tree.object_ids()),
        )
        for item in after.results:
            assert expected[item.object_id] == item.score

    def test_delete_bumps_epoch_and_flushes(self, small_engine, service):
        cold = run(service.query(QUERY, K))
        victim = cold.results[0].object_id
        assert run(service.delete(victim))
        after = run(service.query(QUERY, K))
        assert not after.cached
        assert all(item.object_id != victim for item in after.results)

    def test_failed_delete_does_not_invalidate(self, small_engine, service):
        run(service.query(QUERY, K))
        epoch_before = small_engine.epoch
        assert not run(service.delete(10_000))  # no such object
        assert small_engine.epoch == epoch_before
        assert run(service.query(QUERY, K)).cached

    def test_writes_are_counted(self, small_engine, service):
        run(service.insert(small_engine.space.payload(1)))
        assert service.metrics.writes == 1


class TestOverload:
    def test_overload_is_a_typed_rejection(self, small_engine, monkeypatch):
        import threading

        config = ServiceConfig(workers=1, max_inflight=1, max_queue=0)
        release = threading.Event()
        original = small_engine.top_k_dominating

        def held_open(*args, **kwargs):
            release.wait(timeout=10)
            return original(*args, **kwargs)

        monkeypatch.setattr(small_engine, "top_k_dominating", held_open)

        async def scenario(svc):
            first = asyncio.create_task(svc.query([1, 2, 3], K))
            await asyncio.sleep(0.05)  # the slot is now provably held
            with pytest.raises(Overloaded):
                await svc.query([4, 5, 6], K)
            release.set()
            await first

        with QueryService(small_engine, config) as svc:
            run(scenario(svc))
            assert svc.metrics.rejected_overloaded == 1
            assert svc.metrics.completed == 1


class TestCoalesceFreshness:
    def test_write_during_io_stall_does_not_feed_a_late_query(
        self, small_engine
    ):
        # regression: a query arriving after a write commits
        # (epoch bumped, cache flushed) must not join a flight whose
        # leader computed at the pre-write epoch.  The leader closes
        # its flight under the engine read lock, so by the time the
        # write can land the key is un-joinable and the late query
        # recomputes fresh.  With the flight left joinable through the
        # io_model stall (the old behaviour), the inner query below
        # joins it and blocks on a future the stalled leader has not
        # completed — a deadlock caught by the join timeout — and with
        # any other timing it would be handed the stale answer.
        import threading

        config = ServiceConfig(workers=2, io_model=True, io_cost_scale=0.01)
        inner = {}

        with QueryService(small_engine, config) as service:
            original_stall = service._io_stall
            interleaved = threading.Event()

            def stall_with_interleaved_write(stats):
                if not interleaved.is_set():
                    interleaved.set()
                    service.insert_sync(small_engine.space.payload(0) * 0.25)

                    def late_query():
                        inner["response"] = service.query_sync(QUERY, K)

                    thread = threading.Thread(target=late_query)
                    thread.start()
                    thread.join(timeout=10)
                    assert not thread.is_alive(), (
                        "post-write query joined the pre-write flight"
                    )
                original_stall(stats)

            service._io_stall = stall_with_interleaved_write
            leader = service.query_sync(QUERY, K)

        assert interleaved.is_set()
        response = inner["response"]
        assert response.epoch == small_engine.epoch
        assert not response.coalesced and not response.cached
        assert service.verify_response(QUERY, K, response) is True
        # the leader itself is not stale: its request predates the
        # write, and its epoch stamp says so.
        assert leader.epoch == response.epoch - 1


class TestVerification:
    def test_verify_response_confirms_fresh_results(self, service):
        response = run(service.query(QUERY, K))
        assert service.verify_response(QUERY, K, response) is True

    def test_verify_response_unverifiable_after_write(
        self, small_engine, service
    ):
        response = run(service.query(QUERY, K))
        run(service.insert(small_engine.space.payload(2)))
        assert service.verify_response(QUERY, K, response) is None

    def test_verify_detects_fabricated_stale_entry(
        self, small_engine, service
    ):
        # simulate a broken invalidation protocol: plant a wrong answer
        # in the cache at the *current* epoch, so the service serves it.
        honest = run(service.query(QUERY, K))
        forged = [
            type(item)(item.object_id, item.score + 1)
            for item in honest.results
        ]
        request = QueryRequest.make(QUERY, K)
        service.cache.put(
            request.key,
            small_engine.epoch,
            (forged, honest.stats, small_engine.epoch),
        )
        served = run(service.query(QUERY, K))
        assert served.cached and served.results == forged
        with pytest.raises(StaleResultError):
            service.verify_response(QUERY, K, served)

    def test_verify_mode_audits_cold_executions(self, small_engine):
        config = ServiceConfig(workers=1, verify=True)
        with QueryService(small_engine, config) as svc:
            response = run(svc.query(QUERY, K))
            assert response.results


class TestLifecycleAndSnapshot:
    def test_snapshot_is_json_serialisable(self, service):
        import json

        run(service.query(QUERY, K))
        run(service.query(QUERY, K))
        snap = service.snapshot()
        assert json.dumps(snap)
        assert snap["requests"]["completed"] == 2
        assert snap["requests"]["cache_hits"] == 1
        assert snap["cache"]["hits"] == 1
        assert snap["engine"]["epoch"] == 0
        assert snap["latency"]["all"]["count"] == 2

    def test_close_is_idempotent(self, small_engine):
        svc = QueryService(small_engine, ServiceConfig(workers=1))
        svc.close()
        svc.close()

    def test_workers_validated(self, small_engine):
        with pytest.raises(ValueError):
            QueryService(small_engine, ServiceConfig(workers=0))

    def test_explicit_zero_max_inflight_rejected(self, small_engine):
        # max_inflight=0 must surface as a config error, not be
        # silently coerced to the workers default by truthiness.
        with pytest.raises(ValueError):
            QueryService(
                small_engine, ServiceConfig(workers=2, max_inflight=0)
            )


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        import threading
        import time

        lock = ReadWriteLock()
        timeline = []

        def reader(tag):
            with lock.read():
                timeline.append(("r-in", tag))
                time.sleep(0.05)
                timeline.append(("r-out", tag))

        def writer():
            with lock.write():
                timeline.append(("w-in", None))
                timeline.append(("w-out", None))

        readers = [
            threading.Thread(target=reader, args=(i,)) for i in range(3)
        ]
        for thread in readers:
            thread.start()
        time.sleep(0.01)
        writing = threading.Thread(target=writer)
        writing.start()
        for thread in readers + [writing]:
            thread.join()

        max_concurrent_readers = 0
        in_count = 0
        for event, _tag in timeline:
            if event == "r-in":
                in_count += 1
                max_concurrent_readers = max(max_concurrent_readers, in_count)
            elif event == "r-out":
                in_count -= 1
        assert max_concurrent_readers >= 2, "readers must overlap"
        # at the instant the writer entered, no reader was inside
        readers_inside = 0
        for event, _tag in timeline:
            if event == "w-in":
                assert readers_inside == 0, "writer overlapped a reader"
            elif event == "r-in":
                readers_inside += 1
            elif event == "r-out":
                readers_inside -= 1


class TestMonitoredService:
    """config.monitor wires the self-monitoring pipeline end to end."""

    @pytest.fixture
    def monitored(self, small_engine):
        config = ServiceConfig(
            workers=2, monitor=True, monitor_interval=60.0
        )
        with QueryService(small_engine, config) as svc:
            yield svc

    def test_monitor_sections_in_snapshot(self, monitored):
        run(monitored.query(QUERY, K))
        monitored.monitor.tick()
        snapshot = monitored.snapshot()
        assert snapshot["monitor"]["ticks"] == 1
        assert snapshot["monitor"]["alerts"]["evaluations"] > 0
        assert snapshot["health"]["status"] in (
            "ok", "degraded", "unhealthy"
        )

    def test_request_latency_histogram_fills(self, monitored):
        run(monitored.query(QUERY, K))
        run(monitored.query(QUERY, K))
        hist = monitored.snapshot()["instruments"][
            "request_latency_seconds"
        ]
        assert hist["count"] == 2

    def test_health_method_answers(self, monitored):
        health = monitored.health()
        assert set(health["checks"]) == {
            "alerts", "durability", "breakers", "subscriptions", "faults"
        }

    def test_custom_rules_and_forced_breach(self, small_engine):
        from repro.obs.slo import ThresholdRule

        config = ServiceConfig(
            workers=1,
            monitor=True,
            monitor_interval=60.0,
            monitor_rules=[
                ThresholdRule(
                    "requests.received", ">=", 1.0,
                    name="any-traffic", severity="warn",
                )
            ],
        )
        with QueryService(small_engine, config) as svc:
            run(svc.query(QUERY, K))
            svc.monitor.tick()
            [alert] = svc.monitor.alerts.active()
            assert alert["rule"] == "any-traffic"
            assert alert["state"] == "firing"
            assert svc.health()["status"] == "degraded"
            assert svc.monitor.alerts.fired == 1

    def test_monitor_out_publishes_document(self, small_engine, tmp_path):
        from repro.obs.monitor import load_monitor_document

        out = tmp_path / "live.json"
        config = ServiceConfig(
            workers=1, monitor=True, monitor_interval=60.0,
            monitor_out=str(out),
        )
        with QueryService(small_engine, config) as svc:
            run(svc.query(QUERY, K))
            svc.monitor.tick()
            document = load_monitor_document(str(out))
            assert document["health"]["status"] in (
                "ok", "degraded", "unhealthy"
            )
            assert "requests.received" in document["series"]

    def test_attach_coordinator_feeds_health_and_gauges(self, monitored):
        import random as random_mod

        from repro.distributed import DistributedTopK

        system = DistributedTopK(
            monitored.engine.space, num_sites=2,
            rng=random_mod.Random(5),
        )
        monitored.attach_coordinator(system)
        snapshot = monitored.snapshot()
        assert len(snapshot["distributed"]["sites"]) == 2
        instruments = snapshot["instruments"]
        assert instruments['site_breaker_state{site="0"}'] == 0.0
        system.clients[0].breaker.force_open()
        system.clients[1].breaker.force_open()
        health = monitored.health()
        assert health["checks"]["breakers"]["status"] == "unhealthy"
