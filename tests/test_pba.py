"""PBA1/PBA2 behaviour (Algorithm 3): correctness, pruning configs,
progressiveness and the paper's efficiency claims in miniature."""

import itertools

import pytest

from repro import PBA1, PBA2, PruningConfig
from repro.core.brute_force import brute_force_scores

from tests.conftest import make_engine

ALL_FLAGS = (
    "dh1", "dh2", "dh3", "eph1", "eph2", "eph3", "eph4", "eph5", "iph",
)


@pytest.fixture(params=[PBA1, PBA2], ids=["pba1", "pba2"])
def algo_cls(request):
    return request.param


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_continuous(self, algo_cls, seed):
        engine = make_engine(n=120, seed=seed)
        queries = [seed, 60 + seed, 110 - seed]
        truth = brute_force_scores(engine.space, queries)
        results = list(algo_cls(engine.make_context()).run(queries, 7))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:7]
        for item in results:
            assert truth[item.object_id] == item.score

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_with_ties(self, algo_cls, seed):
        engine = make_engine(n=110, seed=seed + 40, grid=3)
        queries = [seed, 55, 100 - seed]
        truth = brute_force_scores(engine.space, queries)
        results = list(algo_cls(engine.make_context()).run(queries, 8))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:8]

    def test_single_query_object(self, algo_cls):
        engine = make_engine(n=80, seed=44)
        truth = brute_force_scores(engine.space, [13])
        results = list(algo_cls(engine.make_context()).run([13], 5))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]

    def test_k_equals_n(self, algo_cls):
        engine = make_engine(n=25, seed=45, grid=2)
        truth = brute_force_scores(engine.space, [0, 12])
        results = list(algo_cls(engine.make_context()).run([0, 12], 25))
        assert len(results) == 25
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )

    def test_many_query_objects(self, algo_cls):
        engine = make_engine(n=90, seed=46)
        queries = list(range(0, 80, 10))  # m = 8
        truth = brute_force_scores(engine.space, queries)
        results = list(algo_cls(engine.make_context()).run(queries, 4))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:4]


class TestPruningConfigs:
    @pytest.mark.parametrize("disabled", ALL_FLAGS)
    def test_each_heuristic_disabled_still_correct(
        self, algo_cls, disabled
    ):
        engine = make_engine(n=100, seed=47, grid=4)
        queries = [0, 33, 66]
        truth = brute_force_scores(engine.space, queries)
        config = PruningConfig()
        setattr(config, disabled, False)
        results = list(
            algo_cls(engine.make_context(), pruning=config).run(queries, 6)
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]

    @pytest.mark.parametrize("enabled", ALL_FLAGS)
    def test_each_heuristic_alone_still_correct(self, algo_cls, enabled):
        engine = make_engine(n=100, seed=48, grid=3)
        queries = [5, 50, 95]
        truth = brute_force_scores(engine.space, queries)
        config = PruningConfig.none()
        setattr(config, enabled, True)
        results = list(
            algo_cls(engine.make_context(), pruning=config).run(queries, 6)
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]

    def test_no_pruning_still_correct(self, algo_cls):
        engine = make_engine(n=90, seed=49)
        queries = [1, 45]
        truth = brute_force_scores(engine.space, queries)
        results = list(
            algo_cls(
                engine.make_context(), pruning=PruningConfig.none()
            ).run(queries, 5)
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]

    def test_pruning_reduces_exact_computations(self, algo_cls):
        engine = make_engine(n=200, seed=50)
        queries = [3, 100, 180]
        ctx_off = engine.make_context()
        list(
            algo_cls(ctx_off, pruning=PruningConfig.none()).run(queries, 10)
        )
        ctx_on = engine.make_context()
        list(algo_cls(ctx_on).run(queries, 10))
        assert (
            ctx_on.stats.exact_score_computations
            <= ctx_off.stats.exact_score_computations
        )


class TestProgressiveness:
    def test_results_stream_incrementally(self, algo_cls):
        engine = make_engine(n=150, seed=51)
        queries = [0, 75, 140]
        metric = engine.space.metric
        gen = algo_cls(engine.make_context()).run(queries, 10)
        before = metric.snapshot()
        next(gen)
        partial = metric.delta_since(before)
        list(gen)
        total = metric.delta_since(before)
        assert partial < total

    def test_early_stop_cleans_up(self, algo_cls):
        engine = make_engine(n=100, seed=52)
        gen = algo_cls(engine.make_context()).run([0, 50], 10)
        next(gen)
        gen.close()  # the finally-block must drop the aux structures

    def test_scores_non_increasing(self, algo_cls):
        engine = make_engine(n=120, seed=53, grid=5)
        results = list(
            algo_cls(engine.make_context()).run([2, 60, 118], 12)
        )
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


class TestEfficiencyClaims:
    def test_exact_computations_far_below_n(self):
        """Table 3's headline: PBA computes exact scores for a tiny
        fraction of the data set."""
        engine = make_engine(n=300, seed=54)
        queries = [0, 150, 290]
        ctx = engine.make_context()
        list(PBA2(ctx).run(queries, 10))
        assert ctx.stats.exact_score_computations < 300 * 0.3

    def test_pba_uses_fewer_distances_than_full_matrix(self):
        engine = make_engine(n=300, seed=55)
        # nearby query objects (the paper's default coverage regime) —
        # spread-out queries are PBA's worst case and approach n*m.
        anchor = 10
        queries = sorted(
            engine.space.object_ids,
            key=lambda i: engine.space.distance(anchor, i),
        )[:4]
        ctx = engine.make_context()
        metric = engine.space.metric
        before = metric.snapshot()
        list(PBA2(ctx).run(queries, 5))
        used = metric.delta_since(before)
        assert used < 300 * len(queries)  # beats SBA/ABA's n*m floor

    def test_pba1_pba2_same_answers(self):
        engine = make_engine(n=150, seed=56, grid=4)
        queries = [0, 75, 149]
        r1 = list(PBA1(engine.make_context()).run(queries, 10))
        r2 = list(PBA2(engine.make_context()).run(queries, 10))
        assert [r.score for r in r1] == [r.score for r in r2]
