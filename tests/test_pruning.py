"""Safety of the pruning bounds: every heuristic bound must upper-bound
the true domination score (a bound that can undercut would prune true
results — the one unforgivable bug in PBA)."""

import itertools

import pytest

from repro.core.brute_force import brute_force_scores
from repro.core.dominance import DistanceVectorSource, dominates_vectors
from repro.core.pruning import (
    ExactScoreInfo,
    PruningConfig,
    dominated_by_any,
    eph3_bound,
    eph4_bound,
    eph5_bound,
)

from tests.conftest import make_vector_space
from tests.test_scoring import _SimulatedRun


@pytest.fixture(params=[(35, None, 0), (40, 3, 1), (30, 2, 5)])
def state(request):
    n, grid, seed = request.param
    space = make_vector_space(n=n, dims=2, seed=seed, grid=grid)
    queries = [0, n // 3, 2 * n // 3]
    sim = _SimulatedRun(space, queries)
    truth = brute_force_scores(space, queries)
    commons = []
    while True:
        rec = sim.advance_until_common()
        if rec is None:
            break
        commons.append(rec)
    return sim, space, queries, truth, commons


class TestEstdomLemma5:
    def test_estdom_upper_bounds_true_score(self, state):
        sim, space, _queries, truth, commons = state
        n = len(space)
        for rec in commons:
            estdom = n - rec.max_rank + rec.eq
            assert truth[rec.object_id] <= estdom, rec.object_id


class TestEph3:
    def test_bound_is_safe(self, state):
        sim, space, _queries, truth, commons = state
        n = len(space)
        for rec in commons:
            assert truth[rec.object_id] <= eph3_bound(n, rec.lpos)

    def test_tighter_or_equal_than_estdom_without_ties(self):
        space = make_vector_space(n=40, dims=3, seed=9)  # continuous
        sim = _SimulatedRun(space, [0, 20])
        rec = sim.advance_until_common()
        estdom = len(space) - rec.max_rank + rec.eq
        assert eph3_bound(len(space), rec.lpos) <= estdom


class TestEph4:
    def test_bound_is_safe(self, state):
        sim, space, _queries, truth, commons = state
        n = len(space)
        positions = [len(log) for log in sim.aux.logs]
        for rec in commons:
            bound = eph4_bound(n, len(sim.aux), positions, rec.lpos)
            assert truth[rec.object_id] <= bound, rec.object_id


class TestEph5:
    def test_bound_is_safe_for_every_pair(self, state):
        sim, space, _queries, truth, commons = state
        infos = [
            ExactScoreInfo(
                object_id=rec.object_id,
                score=truth[rec.object_id],
                vector=rec.vector(),
                lpos=tuple(rec.lpos),
                eq=rec.eq,
            )
            for rec in commons
        ]
        for info in infos:
            for rec in commons:
                if rec.object_id == info.object_id:
                    continue
                bound = eph5_bound(info, rec.lpos)
                assert truth[rec.object_id] <= bound, (
                    info.object_id,
                    rec.object_id,
                )


class TestDominatedByAny:
    def test_detects_dominator(self):
        assert dominated_by_any((2.0, 2.0), [(1.0, 1.0)])

    def test_equivalent_not_dominated(self):
        assert not dominated_by_any((1.0, 1.0), [(1.0, 1.0)])

    def test_empty_dominators(self):
        assert not dominated_by_any((0.0, 0.0), [])

    def test_dominance_implies_strictly_lower_score(self, state):
        """The EPH1/EPH2 justification: a ≺ b ⇒ dom(a) > dom(b)."""
        sim, space, queries, truth, commons = state
        source = DistanceVectorSource(space, queries)
        ids = list(space.object_ids)
        for a in ids[::3]:
            for b in ids[::4]:
                if a != b and source.dominates(a, b):
                    assert truth[a] > truth[b]


class TestPruningConfig:
    def test_defaults_all_on(self):
        config = PruningConfig()
        assert all(
            getattr(config, flag)
            for flag in (
                "dh1", "dh2", "dh3",
                "eph1", "eph2", "eph3", "eph4", "eph5", "iph",
            )
        )

    def test_none_all_off(self):
        config = PruningConfig.none()
        assert not any(
            getattr(config, flag)
            for flag in (
                "dh1", "dh2", "dh3",
                "eph1", "eph2", "eph3", "eph4", "eph5", "iph",
            )
        )
