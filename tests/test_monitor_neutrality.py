"""Monitor neutrality: monitoring on vs off changes nothing that counts.

The standing invariant of repro.obs.monitor is that it only ever
*reads* — with the monitor attached, query results are identical and
the paper's deterministic cost counters (distance computations,
exact-score computations, page faults, buffer hits) are bit-identical
to a monitor-less run.  The only additions are new registry sections
(``monitor`` / ``health``) and the wall-clock ``request_latency_seconds``
histogram, none of which feed back into execution.
"""

from __future__ import annotations

import pytest

from repro.api import open_engine
from repro.service.server import QueryService, ServiceConfig

from tests.conftest import make_vector_space

N = 80
DIMS = 3
QUERIES = [[0, 10, 20], [5, 15], [0, 10, 20], [33, 44, 55], [5, 15]]


def run_workload(monitor: bool):
    """One deterministic serve run; returns (results, cost counters)."""
    space = make_vector_space(n=N, dims=DIMS, seed=41)
    engine = open_engine(space, seed=41)
    config = ServiceConfig(
        workers=2,
        monitor=monitor,
        # a slow interval keeps the scheduler thread from ticking
        # mid-run; determinism must not depend on that, but the final
        # counters we compare shouldn't race the scrape either.
        monitor_interval=60.0,
    )
    results = []
    with QueryService(engine, config) as service:
        for query in QUERIES:
            response = service.query_sync(list(query), k=6)
            results.append(
                [(item.object_id, item.score) for item in response.results]
            )
        if monitor:
            service.monitor.tick()  # prove a scrape happened mid-flight
        for query in QUERIES:
            response = service.query_sync(list(query), k=6)
            results.append(
                [(item.object_id, item.score) for item in response.results]
            )
        snapshot = service.snapshot()
    per_algorithm = snapshot["per_algorithm"]
    costs = {
        algorithm: {
            key: aggregate[key]
            for key in aggregate
            if key in (
                "executions",
                "distance_computations",
                "exact_score_computations",
                "page_faults",
                "buffer_hits",
                "results_reported",
            )
        }
        for algorithm, aggregate in per_algorithm.items()
    }
    return results, costs, snapshot


class TestMonitorNeutrality:
    @pytest.fixture(scope="class")
    def runs(self):
        off = run_workload(monitor=False)
        on = run_workload(monitor=True)
        return off, on

    def test_results_identical(self, runs):
        (results_off, _, _), (results_on, _, _) = runs
        assert results_on == results_off

    def test_cost_counters_bit_identical(self, runs):
        (_, costs_off, _), (_, costs_on, _) = runs
        assert costs_on == costs_off

    def test_monitor_off_has_no_monitor_surface(self, runs):
        (_, _, snap_off), (_, _, snap_on) = runs
        assert "monitor" not in snap_off
        assert "health" not in snap_off
        assert "request_latency_seconds" not in snap_off.get(
            "instruments", {}
        )
        # and on: the monitor sections exist and saw real traffic
        assert snap_on["monitor"]["ticks"] >= 1
        assert snap_on["health"]["status"] in ("ok", "degraded", "unhealthy")
        assert (
            snap_on["instruments"]["request_latency_seconds"]["count"]
            == 2 * len(QUERIES)
        )

    def test_monitor_off_service_has_no_monitor(self):
        space = make_vector_space(n=20, dims=DIMS, seed=1)
        engine = open_engine(space, seed=1)
        with QueryService(engine, ServiceConfig(workers=1)) as service:
            assert service.monitor is None
            # health still answers without a monitor
            health = service.health()
            assert health["status"] == "ok"
            assert (
                health["checks"]["alerts"]["detail"] == "monitor not attached"
            )
