"""Progressive-latency instrumentation (bench/progressive.py)."""

import pytest

from repro.bench.progressive import (
    ProgressiveTrace,
    measure_progressive_latency,
)

from tests.conftest import make_engine


@pytest.fixture(scope="module")
def engine():
    return make_engine(n=250, seed=101)


class TestTrace:
    def test_trace_has_one_point_per_result(self, engine):
        trace = measure_progressive_latency(engine, [0, 125], 8)
        assert trace.k == 8
        assert [p.rank for p in trace.points] == list(range(1, 9))

    def test_monotone_counters(self, engine):
        trace = measure_progressive_latency(engine, [1, 130], 10)
        elapsed = [p.elapsed_seconds for p in trace.points]
        dists = [p.distance_computations for p in trace.points]
        faults = [p.page_faults for p in trace.points]
        assert elapsed == sorted(elapsed)
        assert dists == sorted(dists)
        assert faults == sorted(faults)

    def test_scores_descend(self, engine):
        trace = measure_progressive_latency(engine, [2, 200], 10)
        scores = [p.score for p in trace.points]
        assert scores == sorted(scores, reverse=True)

    def test_time_accessors(self, engine):
        trace = measure_progressive_latency(engine, [3, 90], 5)
        assert 0 < trace.time_to_first <= trace.time_to_last

    def test_empty_trace_defaults(self):
        trace = ProgressiveTrace(algorithm="x")
        assert trace.k == 0
        assert trace.time_to_first == 0.0
        assert trace.first_result_fraction() == 0.0


class TestFirstResultFraction:
    def test_fraction_in_unit_interval(self, engine):
        for algorithm in ("sba", "aba", "pba1", "pba2"):
            trace = measure_progressive_latency(
                engine, [5, 150], 10, algorithm=algorithm
            )
            for metric in ("distance", "time", "io"):
                fraction = trace.first_result_fraction(metric)
                assert 0.0 <= fraction <= 1.0, (algorithm, metric)

    def test_pba_first_result_cheap_in_distances(self, engine):
        """The progressiveness claim: PBA's first result needs only a
        fraction of the full run's distance computations."""
        trace = measure_progressive_latency(
            engine, [7, 180], 10, algorithm="pba2"
        )
        assert trace.first_result_fraction("distance") < 1.0

    def test_unknown_metric_rejected(self, engine):
        trace = measure_progressive_latency(engine, [8, 60], 3)
        with pytest.raises(ValueError):
            trace.first_result_fraction("bogus")

    def test_all_algorithms_report_same_first_score(self, engine):
        firsts = set()
        for algorithm in ("sba", "aba", "pba1", "pba2"):
            trace = measure_progressive_latency(
                engine, [9, 210], 1, algorithm=algorithm
            )
            firsts.add(trace.points[0].score)
        assert len(firsts) == 1
