"""Unit tests for the circuit breaker state machine (fake clock)."""

import pytest

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(threshold=3, reset=1.0, clock=None):
    return CircuitBreaker(
        failure_threshold=threshold,
        reset_timeout=reset,
        clock=clock or FakeClock(),
        name="test",
    )


class TestValidation:
    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_negative_reset_timeout_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_threshold_consecutive_failures_open(self):
        breaker = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1
        assert breaker.rejections == 1

    def test_success_resets_consecutive_count(self):
        breaker = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_until_reset_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(threshold=1, reset=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert breaker.probes == 1

    def test_successful_probe_closes(self):
        clock = FakeClock()
        breaker = make_breaker(threshold=1, reset=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_for_another_window(self):
        clock = FakeClock()
        breaker = make_breaker(threshold=3, reset=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # one probe failure suffices, not 3
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 2
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN


class TestManualControls:
    def test_force_open_trips_immediately(self):
        breaker = make_breaker()
        breaker.force_open()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_force_open_recovers_via_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(reset=1.0, clock=clock)
        breaker.force_open()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_force_close_resets(self):
        breaker = make_breaker(threshold=1)
        breaker.record_failure()
        breaker.force_close()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_force_open_idempotent_on_opens_counter(self):
        breaker = make_breaker()
        breaker.force_open()
        breaker.force_open()
        assert breaker.opens == 1


class TestSnapshot:
    def test_snapshot_reports_state_and_counters(self):
        clock = FakeClock()
        breaker = make_breaker(threshold=1, reset=1.0, clock=clock)
        breaker.record_failure()
        breaker.allow()  # rejected
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["opens"] == 1
        assert snap["rejections"] == 1
        assert snap["failure_threshold"] == 1
        assert snap["reset_timeout"] == 1.0

    def test_snapshot_resolves_elapsed_window_to_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(threshold=1, reset=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.snapshot()["state"] == HALF_OPEN
