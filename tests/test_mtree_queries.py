"""M-tree query correctness against brute force."""

import itertools
import random

import numpy as np
import pytest

from repro.mtree import (
    IncrementalNNCursor,
    MTree,
    knn_query,
    nearest_neighbor,
    range_query,
)
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


@pytest.fixture(scope="module")
def setup():
    space = make_vector_space(n=300, dims=3, seed=5)
    buf = LRUBuffer(PageManager(), capacity=64)
    tree = MTree.build(space, buf, node_capacity=10, rng=random.Random(5))
    return tree, space


def brute_order(space, query_id):
    return sorted(
        (space.distance(query_id, i), i) for i in space.object_ids
    )


class TestRangeQuery:
    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.3, 0.7, 10.0])
    def test_matches_brute_force(self, setup, radius):
        tree, space = setup
        query = 17
        expected = {
            i for d, i in brute_order(space, query) if d <= radius
        }
        got = {i for i, _d in range_query(tree, query, radius)}
        assert got == expected

    def test_radius_zero_finds_query_itself(self, setup):
        tree, _ = setup
        hits = range_query(tree, 42, 0.0)
        assert 42 in {i for i, _ in hits}

    def test_results_sorted_by_distance(self, setup):
        tree, _ = setup
        hits = range_query(tree, 3, 0.5)
        dists = [d for _i, d in hits]
        assert dists == sorted(dists)

    def test_boundary_inclusive(self, setup):
        tree, space = setup
        # use an exact pairwise distance as the radius: the boundary
        # object must be included (ABA depends on this).
        radius = space.distance(0, 100)
        hits = {i for i, _ in range_query(tree, 0, radius)}
        assert 100 in hits

    def test_payload_query(self, setup):
        tree, space = setup
        probe = np.array([0.5, 0.5, 0.5])
        got = {i for i, _ in range_query(tree, probe, 0.25)}
        expected = {
            i
            for i in space.object_ids
            if space.distance_to_payload(i, probe) <= 0.25
        }
        assert got == expected


class TestKnn:
    @pytest.mark.parametrize("k", [1, 5, 17, 300])
    def test_matches_brute_force(self, setup, k):
        tree, space = setup
        query = 9
        expected = [d for d, _i in brute_order(space, query)[:k]]
        got = [d for _i, d in knn_query(tree, query, k)]
        assert got == pytest.approx(expected)

    def test_k_zero(self, setup):
        tree, _ = setup
        assert knn_query(tree, 0, 0) == []

    def test_k_larger_than_n(self, setup):
        tree, _ = setup
        assert len(knn_query(tree, 0, 10_000)) == 300

    def test_negative_k_rejected(self, setup):
        tree, _ = setup
        with pytest.raises(ValueError):
            knn_query(tree, 0, -1)

    def test_nearest_neighbor_is_self_for_member(self, setup):
        tree, _ = setup
        object_id, distance = nearest_neighbor(tree, 33)
        assert distance == 0.0

    def test_uses_fewer_distances_than_brute(self, setup):
        tree, space = setup
        metric = space.metric
        before = metric.snapshot()
        knn_query(tree, 50, 5)
        assert metric.delta_since(before) < len(space)


class TestIncrementalCursor:
    def test_full_stream_sorted_and_complete(self, setup):
        tree, space = setup
        stream = list(IncrementalNNCursor(tree, 7))
        assert len(stream) == 300
        dists = [d for _i, d in stream]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))
        assert {i for i, _d in stream} == set(space.object_ids)

    def test_prefix_equals_knn(self, setup):
        tree, _ = setup
        cursor = IncrementalNNCursor(tree, 11)
        prefix = list(itertools.islice(cursor, 8))
        assert [i for i, _ in prefix] == [
            i for i, _ in knn_query(tree, 11, 8)
        ]

    def test_lazy_distance_computation(self, setup):
        tree, space = setup
        metric = space.metric
        before = metric.snapshot()
        cursor = IncrementalNNCursor(tree, 21)
        next(cursor)
        first_cost = metric.delta_since(before)
        for _ in range(50):
            next(cursor)
        total_cost = metric.delta_since(before)
        # pulling more neighbors costs more distances: truly incremental.
        assert 0 < first_cost < total_cost < len(space) * 2

    def test_skip_set_filters(self, setup):
        tree, _ = setup
        skipped = {0, 1, 2, 3}
        stream = list(IncrementalNNCursor(tree, 0, skip=skipped))
        assert not ({i for i, _ in stream} & skipped)
        assert len(stream) == 296

    def test_skip_updated_mid_stream(self, setup):
        tree, _ = setup
        skip = set()
        cursor = IncrementalNNCursor(tree, 5, skip=skip)
        seen = [next(cursor)[0] for _ in range(5)]
        # discard a far-away object before the cursor reaches it
        far = list(IncrementalNNCursor(tree, 5))[-1][0]
        skip.add(far)
        rest = [i for i, _ in cursor]
        assert far not in rest
        assert far not in seen

    def test_exhausted_cursor_raises(self, setup):
        tree, _ = setup
        cursor = IncrementalNNCursor(tree, 2)
        list(cursor)
        with pytest.raises(StopIteration):
            next(cursor)


class TestTieHandling:
    def test_equal_distance_objects_all_streamed(self):
        space = make_vector_space(n=120, dims=2, seed=8, grid=3)
        buf = LRUBuffer(PageManager(), capacity=32)
        tree = MTree.build(space, buf, node_capacity=8)
        stream = list(IncrementalNNCursor(tree, 0))
        assert len(stream) == 120
        dists = [d for _i, d in stream]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))
