"""External (non-data-set) query objects via register_query_payload."""

import numpy as np
import pytest

from repro.core.brute_force import brute_force_scores

from tests.conftest import make_engine


@pytest.fixture
def engine():
    return make_engine(n=100, seed=161)


class TestRegistration:
    def test_registered_id_is_fresh(self, engine):
        qid = engine.register_query_payload(np.array([0.5, 0.5, 0.5]))
        assert qid == 100
        assert qid not in engine.tree  # not indexed

    def test_registered_object_never_a_result(self, engine):
        qid = engine.register_query_payload(np.array([0.4, 0.4, 0.4]))
        results, _ = engine.top_k_dominating([qid, 3], 100)
        assert qid not in {r.object_id for r in results}
        assert len(results) == 100  # all indexed objects, not the query


class TestCorrectness:
    def test_all_algorithms_agree_with_oracle(self, engine):
        qid = engine.register_query_payload(np.array([0.3, 0.6, 0.2]))
        queries = [qid, 10]
        truth = brute_force_scores(
            engine.space, queries, universe=list(engine.tree.object_ids())
        )
        expected = sorted(truth.values(), reverse=True)[:6]
        for algorithm in ("brute", "sba", "aba", "pba1", "pba2"):
            results, _ = engine.top_k_dominating(
                queries, 6, algorithm=algorithm
            )
            assert [r.score for r in results] == expected, algorithm

    def test_purely_external_query_set(self, engine):
        rng = np.random.default_rng(5)
        queries = [
            engine.register_query_payload(rng.random(3)) for _ in range(3)
        ]
        truth = brute_force_scores(
            engine.space, queries, universe=list(engine.tree.object_ids())
        )
        for algorithm in ("pba1", "pba2"):
            results, _ = engine.top_k_dominating(
                queries, 5, algorithm=algorithm
            )
            assert [r.score for r in results] == sorted(
                truth.values(), reverse=True
            )[:5], algorithm

    def test_external_queries_with_ties(self):
        engine = make_engine(n=90, seed=162, grid=3)
        qid = engine.register_query_payload(
            np.round(np.random.default_rng(0).random(3) * 3) / 3
        )
        queries = [qid, 0]
        truth = brute_force_scores(
            engine.space, queries, universe=list(engine.tree.object_ids())
        )
        results, _ = engine.top_k_dominating(queries, 6, algorithm="pba2")
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]

    def test_on_vptree_index(self):
        from tests.conftest import make_vector_space
        import random
        from repro import TopKDominatingEngine

        space = make_vector_space(n=80, seed=163)
        engine = TopKDominatingEngine(
            space, rng=random.Random(163), index="vptree"
        )
        qid = engine.register_query_payload(np.array([0.2, 0.8, 0.5]))
        truth = brute_force_scores(
            engine.space, [qid, 1], universe=list(engine.tree.object_ids())
        )
        results, _ = engine.top_k_dominating([qid, 1], 5, algorithm="pba2")
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]
