"""Unit tests for the unified metrics registry (repro.obs.registry)."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help_text,
    escape_label_value,
    sanitize_metric_name,
)


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_up_and_down(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_histogram_observe_and_export(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        exported = histogram.export()
        assert exported["count"] == 3
        assert exported["sum"] == pytest.approx(55.5)
        assert exported["buckets"] == {"1.0": 1, "10.0": 1, "+Inf": 1}

    def test_histogram_nan_skipped(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(float("nan"))
        assert histogram.export()["count"] == 0

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_histogram_prometheus_cumulative(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        lines = histogram.prometheus_lines("ns_h")
        assert 'ns_h_bucket{le="1.0"} 2' in lines
        assert 'ns_h_bucket{le="10.0"} 3' in lines
        assert 'ns_h_bucket{le="+Inf"} 4' in lines
        assert "ns_h_count 4" in lines


class TestRegistryInstruments:
    def test_get_or_create_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("requests")
        b = registry.counter("requests")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_instruments_in_collect(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2)
        document = registry.collect()
        assert document["instruments"]["hits"] == 3.0
        assert document["instruments"]["depth"] == 2.0


class TestCollectors:
    def test_sections_and_root_merge(self):
        registry = MetricsRegistry()
        registry.register_collector("engine", lambda: {"epoch": 4})
        registry.register_collector(None, lambda: {"requests": {"total": 9}})
        document = registry.collect()
        assert document["engine"] == {"epoch": 4}
        assert document["requests"] == {"total": 9}

    def test_duplicate_section_rejected(self):
        registry = MetricsRegistry()
        registry.register_collector("a", dict)
        with pytest.raises(ValueError):
            registry.register_collector("a", dict)

    def test_unregister(self):
        registry = MetricsRegistry()
        unregister = registry.register_collector("a", lambda: {"x": 1})
        unregister()
        assert "a" not in registry.collect()

    def test_collect_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "mix", lambda: {"s": "text", "b": True, "f": 1.5, "n": None}
        )
        json.dumps(registry.collect())


class TestPrometheus:
    def test_numeric_bool_and_string_leaves(self):
        registry = MetricsRegistry(namespace="repro")
        registry.register_collector(
            "svc",
            lambda: {
                "count": 3,
                "enabled": True,
                "state": "closed",
                "nested": {"ratio": 0.5},
                "ignored": [1, 2],
                "missing": None,
            },
        )
        text = registry.to_prometheus()
        assert "repro_svc_count 3" in text
        assert "repro_svc_enabled 1" in text
        assert 'repro_svc_state{value="closed"} 1' in text
        assert "repro_svc_nested_ratio 0.5" in text
        assert "ignored" not in text
        assert "missing" not in text
        assert text.endswith("\n")

    def test_instrument_type_lines(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("reqs", help="total requests").inc()
        registry.histogram("lat", bounds=(0.1,)).observe(0.05)
        text = registry.to_prometheus()
        assert "# HELP repro_reqs total requests" in text
        assert "# TYPE repro_reqs counter" in text
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text

    def test_none_section_skipped(self):
        registry = MetricsRegistry()
        registry.register_collector("faults", lambda: None)
        assert "faults" not in registry.to_prometheus()
        # ...but present (as null) in the JSON document.
        assert registry.collect()["faults"] is None

    def test_string_label_escaping(self):
        registry = MetricsRegistry()
        registry.register_collector("s", lambda: {"v": 'say "hi"\\'})
        text = registry.to_prometheus()
        assert '{value="say \\"hi\\"\\\\"} 1' in text


class TestExpositionConformance:
    """Text-format 0.0.4 escaping rules, checked character-for-character.

    Label values escape backslash, double-quote and newline; HELP text
    escapes backslash and newline only (quotes are legal there).  An
    unescaped newline splits a sample line in two and breaks every
    scraper, so these are conformance requirements, not cosmetics.
    """

    @pytest.mark.parametrize(
        ("raw", "escaped"),
        [
            ("plain", "plain"),
            ("back\\slash", "back\\\\slash"),
            ('quo"te', 'quo\\"te'),
            ("new\nline", "new\\nline"),
            ('all\\"\n', 'all\\\\\\"\\n'),
        ],
    )
    def test_escape_label_value(self, raw, escaped):
        assert escape_label_value(raw) == escaped

    @pytest.mark.parametrize(
        ("raw", "escaped"),
        [
            ("plain help", "plain help"),
            ("back\\slash", "back\\\\slash"),
            ("new\nline", "new\\nline"),
            ('quotes "stay"', 'quotes "stay"'),  # legal in HELP
        ],
    )
    def test_escape_help_text(self, raw, escaped):
        assert escape_help_text(raw) == escaped

    def test_newline_in_label_value_keeps_exposition_line_based(self):
        registry = MetricsRegistry(namespace="repro")
        registry.register_collector("s", lambda: {"state": "a\nb"})
        text = registry.to_prometheus()
        assert 'repro_s_state{value="a\\nb"} 1' in text
        # every physical line is a comment or a complete sample
        for line in text.strip().split("\n"):
            assert line.startswith("#") or line.count('"') % 2 == 0

    def test_help_with_newline_and_backslash(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("c", help="line1\nline2 C:\\path").inc()
        text = registry.to_prometheus()
        assert "# HELP repro_c line1\\nline2 C:\\\\path" in text
        assert "\nline2" not in text  # no raw newline leaked

    def test_help_and_type_precede_samples(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("reqs", help="requests served").inc(2)
        registry.gauge("depth", help="queue depth").set(1)
        registry.histogram("lat", bounds=(0.5,), help="latency").observe(0.1)
        lines = registry.to_prometheus().strip().split("\n")
        for metric, kind in (
            ("repro_reqs", "counter"),
            ("repro_depth", "gauge"),
            ("repro_lat", "histogram"),
        ):
            help_at = lines.index(
                next(l for l in lines if l.startswith(f"# HELP {metric} "))
            )
            assert lines[help_at + 1] == f"# TYPE {metric} {kind}"
            sample = lines[help_at + 2]
            assert sample.startswith(metric)
            # samples are "name[{labels}] value" — exactly 2 fields
            assert len(sample.rsplit(" ", 1)) == 2


@pytest.mark.parametrize(
    ("raw", "expected"),
    [
        ("plain", "plain"),
        ("dots.and-dashes", "dots_and_dashes"),
        ("9starts_with_digit", "_9starts_with_digit"),
        ("", "_"),
        ("ok:colon", "ok:colon"),
    ],
)
def test_sanitize_metric_name(raw, expected):
    assert sanitize_metric_name(raw) == expected


class TestCollectorHardening:
    """A broken collector or gauge callback must not abort a scrape."""

    def make_registry(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("good", help="healthy instrument").inc(3)
        registry.register_collector("healthy", lambda: {"value": 7})
        return registry

    def test_raising_collector_skipped_in_collect(self):
        registry = self.make_registry()

        def broken():
            raise RuntimeError("collector down")

        registry.register_collector("broken", broken)
        document = registry.collect()
        assert document["healthy"]["value"] == 7
        assert document["instruments"]["good"] == 3.0
        assert "broken" not in document
        assert registry.collector_errors == 1

    def test_raising_collector_skipped_in_prometheus(self):
        registry = self.make_registry()
        registry.register_collector(
            "broken", lambda: (_ for _ in ()).throw(RuntimeError("x"))
        )
        text = registry.to_prometheus()
        assert "repro_healthy_value 7" in text
        assert "repro_good 3.0" in text
        assert registry.collector_errors == 1

    def test_errors_accumulate_per_scrape(self):
        registry = self.make_registry()
        registry.register_collector(
            "broken", lambda: (_ for _ in ()).throw(RuntimeError("x"))
        )
        registry.collect()
        registry.collect()
        registry.to_prometheus()
        assert registry.collector_errors == 3

    def test_error_counter_visible_in_same_scrape(self):
        registry = self.make_registry()
        registry.register_collector(
            "broken", lambda: (_ for _ in ()).throw(RuntimeError("x"))
        )
        document = registry.collect()
        # the failing scrape itself reports the error count
        assert document["instruments"]["collector_errors"] == 1.0

    def test_clean_registry_reports_no_error_counter(self):
        registry = self.make_registry()
        document = registry.collect()
        assert "collector_errors" not in document.get("instruments", {})
        assert registry.collector_errors == 0

    def test_raising_gauge_callback_skipped(self):
        registry = self.make_registry()

        def broken_callback():
            raise RuntimeError("gauge down")

        registry.gauge("bad_gauge", callback=broken_callback)
        document = registry.collect()
        assert "bad_gauge" not in document["instruments"]
        assert document["instruments"]["good"] == 3.0
        text = registry.to_prometheus()
        assert "repro_good 3.0" in text
        assert "bad_gauge" not in text
        assert registry.collector_errors == 2  # one per exposition


class TestCallbackGauges:
    def test_callback_backs_value(self):
        state = {"v": 1.5}
        gauge = Gauge("g", callback=lambda: state["v"])
        assert gauge.value == 1.5
        state["v"] = 2.5
        assert gauge.value == 2.5

    def test_callback_gauge_rejects_set(self):
        gauge = Gauge("g", callback=lambda: 1.0)
        with pytest.raises(TypeError):
            gauge.set(3)

    def test_gauge_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3.0


class TestLabeledInstruments:
    def test_labels_render_sorted_and_escaped(self):
        from repro.obs.registry import render_labels

        assert render_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'
        assert render_labels(None) == ""
        assert render_labels({"s": 'say "hi"\n'}) == '{s="say \\"hi\\"\\n"}'

    def test_labeled_counters_are_distinct_instruments(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("hits", labels={"site": "0"}).inc()
        registry.counter("hits", labels={"site": "1"}).inc(2)
        instruments = registry.collect()["instruments"]
        assert instruments['hits{site="0"}'] == 1.0
        assert instruments['hits{site="1"}'] == 2.0

    def test_labeled_family_help_and_type_emitted_once(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("hits", help="per-site hits",
                         labels={"site": "0"}).inc()
        registry.counter("hits", help="per-site hits",
                         labels={"site": "1"}).inc()
        text = registry.to_prometheus()
        assert text.count("# HELP repro_hits ") == 1
        assert text.count("# TYPE repro_hits counter") == 1
        assert 'repro_hits{site="0"} 1.0' in text
        assert 'repro_hits{site="1"} 1.0' in text
