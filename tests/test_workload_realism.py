"""Realism checks on the benchmark workloads themselves.

The harness's conclusions are only meaningful if the workloads hit the
regimes the paper describes; these tests pin down those properties.
"""

import random

import pytest

from repro.datasets import PAPER_DATASETS, select_query_objects
from repro.skyline import naive_metric_skyline

from tests.conftest import make_vector_space


class TestCoverageSkylineRelation:
    def test_skyline_grows_with_coverage(self):
        """The causal chain behind Figure 6: larger c -> larger metric
        skyline (on average)."""
        space = make_vector_space(n=300, dims=3, seed=151)
        radius = space.approximate_radius(rng=random.Random(151))

        def mean_skyline(coverage):
            total = 0
            for rep in range(5):
                queries = select_query_objects(
                    space,
                    m=5,
                    coverage=coverage,
                    rng=random.Random(500 + rep),
                    dataset_radius=radius,
                )
                total += len(naive_metric_skyline(space, queries))
            return total / 5

        assert mean_skyline(0.05) <= mean_skyline(0.8)


class TestQuerySetsAreDatasetMembers:
    @pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
    def test_membership(self, name):
        space = PAPER_DATASETS[name](120, seed=152)
        queries = select_query_objects(
            space, m=5, coverage=0.2, rng=random.Random(152)
        )
        assert all(0 <= q < len(space) for q in queries)
        assert len(set(queries)) == 5


class TestTieRegimes:
    def test_zil_produces_equivalent_objects(self):
        """ZIL's discrete attributes must yield objects with identical
        distance vectors — the equivalence machinery's real workload."""
        from repro.core.dominance import DistanceVectorSource
        from repro.metric.base import MetricSpace
        from repro.metric.counting import CountingMetric

        raw = PAPER_DATASETS["ZIL"](400, seed=153)
        space = MetricSpace(
            [raw.payload(i) for i in raw.object_ids],
            CountingMetric(raw.metric),
        )
        queries = [0, 200]
        source = DistanceVectorSource(space, queries)
        vectors = {}
        duplicates = 0
        for obj in space.object_ids:
            vec = source.vector(obj)
            duplicates += vec in vectors
            vectors[vec] = obj
        assert duplicates > 0

    def test_uni_is_essentially_tie_free(self):
        from repro.core.dominance import DistanceVectorSource
        from repro.metric.base import MetricSpace
        from repro.metric.counting import CountingMetric

        raw = PAPER_DATASETS["UNI"](400, seed=154)
        space = MetricSpace(
            [raw.payload(i) for i in raw.object_ids],
            CountingMetric(raw.metric),
        )
        source = DistanceVectorSource(space, [0, 200])
        seen = set()
        for obj in space.object_ids:
            vec = source.vector(obj)
            assert vec not in seen or obj in (0, 200)
            seen.add(vec)
