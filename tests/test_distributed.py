"""Distributed top-k dominating (future-work extension, §6)."""

import random

import pytest

from repro.core.brute_force import brute_force_scores
from repro.distributed import (
    DistributedTopK,
    partition_round_robin,
)

from tests.conftest import make_vector_space


class TestPartitioning:
    def test_round_robin_covers_everything(self):
        partitions = partition_round_robin(10, 3)
        assert sorted(sum(partitions, [])) == list(range(10))
        assert [len(p) for p in partitions] == [4, 3, 3]

    def test_single_site(self):
        partitions = partition_round_robin(5, 1)
        assert partitions == [[0, 1, 2, 3, 4]]

    def test_invalid_site_count(self):
        with pytest.raises(ValueError):
            partition_round_robin(5, 0)


class TestCorrectness:
    @pytest.mark.parametrize("num_sites", [1, 2, 4])
    def test_matches_oracle(self, num_sites):
        space = make_vector_space(n=120, dims=3, seed=91)
        system = DistributedTopK(
            space, num_sites=num_sites, rng=random.Random(91)
        )
        queries = [0, 60, 110]
        truth = brute_force_scores(space, queries)
        results, _stats = system.top_k(queries, 8)
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:8]
        for item in results:
            assert truth[item.object_id] == item.score

    def test_matches_oracle_with_ties(self):
        space = make_vector_space(n=100, dims=2, seed=92, grid=3)
        system = DistributedTopK(space, num_sites=3, rng=random.Random(92))
        queries = [0, 50]
        truth = brute_force_scores(space, queries)
        results, _stats = system.top_k(queries, 6)
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]

    def test_k_exceeds_n(self):
        space = make_vector_space(n=12, dims=2, seed=93)
        system = DistributedTopK(space, num_sites=3, rng=random.Random(93))
        results, _stats = system.top_k([0, 6], 50)
        assert len(results) == 12

    def test_skewed_partitions(self):
        space = make_vector_space(n=60, dims=2, seed=94)
        partitions = [list(range(50)), list(range(50, 58)), [58, 59]]
        system = DistributedTopK(
            space, partitions=partitions, rng=random.Random(94)
        )
        queries = [1, 30]
        truth = brute_force_scores(space, queries)
        results, _stats = system.top_k(queries, 5)
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]

    def test_empty_partition_rejected(self):
        space = make_vector_space(n=10, dims=2, seed=95)
        with pytest.raises(ValueError):
            DistributedTopK(space, partitions=[[0, 1], []])


class TestProtocolCosts:
    def test_message_accounting(self):
        space = make_vector_space(n=80, dims=3, seed=96)
        system = DistributedTopK(space, num_sites=4, rng=random.Random(96))
        _results, stats = system.top_k([0, 40], 5)
        # one skyline request per site per round at minimum.
        assert stats.skyline_requests >= 4 * 5
        assert stats.scoring_requests > 0
        assert stats.removal_broadcasts == 4 * 5
        assert stats.total_messages == (
            stats.skyline_requests
            + stats.scoring_requests
            + stats.removal_broadcasts
        )
        assert stats.results_reported == 5

    def test_score_cache_avoids_rescoring(self):
        space = make_vector_space(n=80, dims=3, seed=97)
        system = DistributedTopK(space, num_sites=2, rng=random.Random(97))
        _results, stats = system.top_k([0, 40], 8)
        # without the cache, scoring requests would be >=
        # rounds * |skyline| * sites; with it, each candidate is scored
        # once: far fewer requests than skyline replies.
        assert stats.scoring_requests < stats.skyline_requests * 40

    def test_progressive_interface(self):
        space = make_vector_space(n=60, dims=2, seed=98)
        system = DistributedTopK(space, num_sites=2, rng=random.Random(98))
        stream = system.run([0, 30], 5)
        first_item, first_stats = next(stream)
        assert first_stats.results_reported == 1
        remaining = list(stream)
        assert len(remaining) == 4
        scores = [first_item.score] + [item.score for item, _s in remaining]
        assert scores == sorted(scores, reverse=True)

    def test_more_sites_more_messages(self):
        space = make_vector_space(n=90, dims=3, seed=99)
        few = DistributedTopK(space, num_sites=2, rng=random.Random(99))
        _r, stats_few = few.top_k([0, 45], 5)
        many = DistributedTopK(space, num_sites=6, rng=random.Random(99))
        _r, stats_many = many.top_k([0, 45], 5)
        assert stats_many.total_messages > stats_few.total_messages


class TestBreakerGauges:
    """Per-site breaker state/trips as labeled gauges (satellite task)."""

    def make_system(self):
        space = make_vector_space(n=60, dims=3, seed=7)
        return DistributedTopK(space, num_sites=3, rng=random.Random(7))

    def test_attach_exports_labeled_state_gauges(self):
        from repro.obs.registry import MetricsRegistry

        system = self.make_system()
        registry = MetricsRegistry(namespace="repro")
        system.attach_metrics(registry)
        instruments = registry.collect()["instruments"]
        for site in range(3):
            assert instruments[f'site_breaker_state{{site="{site}"}}'] == 0.0
            assert instruments[f'site_breaker_opens{{site="{site}"}}'] == 0.0

    def test_state_gauge_tracks_breaker_live(self):
        from repro.obs.registry import MetricsRegistry

        system = self.make_system()
        registry = MetricsRegistry(namespace="repro")
        system.attach_metrics(registry)
        system.clients[1].breaker.force_open()
        instruments = registry.collect()["instruments"]
        assert instruments['site_breaker_state{site="1"}'] == 2.0
        assert instruments['site_breaker_opens{site="1"}'] == 1.0
        assert instruments['site_breaker_state{site="0"}'] == 0.0

    def test_prometheus_exposition_labels(self):
        from repro.obs.registry import MetricsRegistry

        system = self.make_system()
        registry = MetricsRegistry(namespace="repro")
        system.attach_metrics(registry)
        system.clients[2].breaker.force_open()
        text = registry.to_prometheus()
        assert 'repro_site_breaker_state{site="2"} 2.0' in text
        assert text.count("# HELP repro_site_breaker_state ") == 1
