"""Dynamic data sets: insertions and deletions through the engine
(the M-tree capability the paper selects it for, Section 4.1)."""

import numpy as np
import pytest

from repro.core.brute_force import brute_force_scores

from tests.conftest import make_engine


class TestInsert:
    def test_inserted_object_is_queryable(self):
        engine = make_engine(n=60, seed=81)
        new_id = engine.insert_object(np.array([0.5, 0.5, 0.5]))
        assert new_id == 60
        assert new_id in engine.tree
        results, _ = engine.top_k_dominating([0, 30], 61)
        assert new_id in {r.object_id for r in results}

    def test_answers_match_oracle_after_inserts(self):
        engine = make_engine(n=50, seed=82)
        rng = np.random.default_rng(5)
        for _ in range(10):
            engine.insert_object(rng.random(3))
        queries = [0, 25, 55]
        truth = brute_force_scores(
            engine.space, queries, universe=list(engine.tree.object_ids())
        )
        for algorithm in ("brute", "sba", "aba", "pba1", "pba2"):
            results, _ = engine.top_k_dominating(
                queries, 6, algorithm=algorithm
            )
            assert [r.score for r in results] == sorted(
                truth.values(), reverse=True
            )[:6], algorithm

    def test_tree_invariants_after_inserts(self):
        engine = make_engine(n=40, seed=83)
        rng = np.random.default_rng(6)
        for _ in range(30):
            engine.insert_object(rng.random(3))
        engine.tree.check_invariants()


class TestDelete:
    def test_deleted_object_never_reported(self):
        engine = make_engine(n=60, seed=84)
        queries = [0, 30]
        results, _ = engine.top_k_dominating(queries, 1)
        top = results[0].object_id
        if top in queries:
            queries = [q for q in range(60) if q not in (top,)][:2]
        assert engine.delete_object(top)
        for algorithm in ("brute", "sba", "aba", "pba1", "pba2"):
            results, _ = engine.top_k_dominating(
                queries, 10, algorithm=algorithm
            )
            assert top not in {r.object_id for r in results}, algorithm

    def test_answers_match_oracle_after_deletes(self):
        engine = make_engine(n=70, seed=85)
        for victim in (3, 17, 44):
            engine.delete_object(victim)
        queries = [0, 35]
        truth = brute_force_scores(
            engine.space, queries, universe=list(engine.tree.object_ids())
        )
        for algorithm in ("brute", "sba", "aba", "pba1", "pba2"):
            results, _ = engine.top_k_dominating(
                queries, 5, algorithm=algorithm
            )
            assert [r.score for r in results] == sorted(
                truth.values(), reverse=True
            )[:5], algorithm

    def test_delete_missing_returns_false(self):
        engine = make_engine(n=20, seed=86)
        engine.delete_object(5)
        assert not engine.delete_object(5)


class TestMixedWorkload:
    def test_interleaved_updates_and_queries(self):
        engine = make_engine(n=40, seed=87)
        rng = np.random.default_rng(7)
        for round_number in range(5):
            engine.insert_object(rng.random(3))
            engine.delete_object(round_number)
            queries = [10, 30]
            truth = brute_force_scores(
                engine.space,
                queries,
                universe=list(engine.tree.object_ids()),
            )
            results, _ = engine.top_k_dominating(queries, 3)
            assert [r.score for r in results] == sorted(
                truth.values(), reverse=True
            )[:3]
        engine.tree.check_invariants()
