"""The correctness anchor of ``repro.streaming.continuous``.

After every update the incrementally maintained ``MSD(Q, k)`` must
equal a from-scratch recompute over the same universe — across
arbitrary interleavings of appends, expiries, pins and standing-query
registrations, including k larger than the window and duplicate
payloads.
"""

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import ManhattanMetric, MetricSpace, TopKDominatingEngine
from repro.core.brute_force import brute_force_scores
from repro.metric.counting import CountingMetric
from repro.streaming import ContinuousTopK, SlidingWindowTopK, StandingQuery

from tests.conftest import make_engine


def oracle_topk(space, query_ids, universe, k):
    """Brute-force MSD(Q, k) with the (-score, id) tie-break."""
    truth = brute_force_scores(space, query_ids, universe=list(universe))
    ranked = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(oid, score) for oid, score in ranked[: min(k, len(truth))]]


def as_pairs(items):
    return [(item.object_id, item.score) for item in items]


# ---------------------------------------------------------------------------
# the hypothesis property
# ---------------------------------------------------------------------------
@st.composite
def churn_scenarios(draw):
    initial = draw(st.integers(min_value=6, max_value=16))
    window_size = draw(st.integers(min_value=initial, max_value=20))
    # deliberately allowed to exceed the window: k > |window| must
    # simply return every member, ranked.
    k = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    threshold = draw(st.sampled_from([0.3, 0.95]))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["append", "append_dup", "pin", "unpin"]),
                st.integers(min_value=0, max_value=10_000),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return initial, window_size, k, seed, threshold, ops


@settings(max_examples=25, deadline=None)
@given(scenario=churn_scenarios())
def test_incremental_equals_batch_recompute(scenario):
    initial, window_size, k, seed, threshold, ops = scenario
    engine = make_engine(n=initial, seed=seed)
    window = SlidingWindowTopK(engine, window_size=window_size)
    rng = np.random.default_rng(seed)

    # standing query on two pinned members: pinning keeps the query
    # objects alive (as ghosts) however far the stream churns.
    queries = window.live_ids[:2]
    for q in queries:
        window.pin(q)
    maintainer = window.register(queries, k, recompute_threshold=threshold)

    last_payload = rng.random(3)
    for op, arg in ops:
        if op == "append":
            last_payload = (
                np.round(rng.random(3) * 4) / 4
            )  # quantized: duplicates and ties are common
            window.append(last_payload)
        elif op == "append_dup":
            window.append(np.array(last_payload))  # exact duplicate payload
        elif op == "pin":
            live = window.live_ids
            window.pin(live[arg % len(live)])
        elif op == "unpin":
            candidates = sorted(set(window.live_ids) | {arg % 30})
            window.unpin(candidates[arg % len(candidates)])
        # the anchor: maintained result == from-scratch recompute,
        # exact ids and scores, after *every* op.
        expected = oracle_topk(engine.space, queries, window.live_ids, k)
        assert as_pairs(maintainer.result) == expected
        assert len(maintainer) == len(window.live_ids)

    assert maintainer.counters["updates"] >= sum(
        1 for op, _ in ops if op.startswith("append")
    )
    window.unregister(maintainer)
    engine.tree.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=24),
    k=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
    threshold=st.sampled_from([0.3, 1.0]),
    aux=st.booleans(),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=10_000)),
        min_size=1,
        max_size=20,
    ),
)
def test_direct_maintainer_matches_oracle(n, k, seed, threshold, aux, ops):
    """Raw engine inserts/deletes (no window) through ``attach``."""
    engine = make_engine(n=n, seed=seed)
    queries = [0, 1]
    maintainer = ContinuousTopK(
        engine,
        queries,
        k,
        recompute_threshold=threshold,
        aux_mirror=aux,
    )
    maintainer.attach()
    rng = np.random.default_rng(seed)
    try:
        for is_insert, arg in ops:
            deletable = [
                obj for obj in maintainer.member_ids if obj not in queries
            ]
            if is_insert or not deletable:
                engine.insert_object(rng.random(3))
            else:
                engine.delete_object(deletable[arg % len(deletable)])
            universe = sorted(engine.tree.object_ids())
            expected = oracle_topk(engine.space, queries, universe, k)
            assert as_pairs(maintainer.result) == expected
            if aux:
                for obj in maintainer.member_ids:
                    assert maintainer.aux.record(obj).q_counter == (
                        maintainer.score_of(obj)
                    )
    finally:
        maintainer.close()


# ---------------------------------------------------------------------------
# update cost semantics
# ---------------------------------------------------------------------------
class TestUpdateCost:
    def test_insert_costs_exactly_m_distances(self):
        engine = make_engine(n=50, seed=21)
        maintainer = ContinuousTopK(engine, [0, 1, 2, 3], 5)
        # isolate the maintainer's own cost from the M-tree insert's
        # navigation distances: add a space-resident object directly.
        new_id = engine.register_query_payload(np.full(3, 0.5))
        metric = engine.counting_metric
        before = metric.count
        maintainer.add_object(new_id)
        assert metric.count - before == 4  # one per query object
        assert maintainer.last_stats.distance_computations == 4
        assert maintainer.last_stats.distance_batches == 1
        maintainer.close()

    def test_attached_insert_charges_maintainer_m_distances(self):
        engine = make_engine(n=50, seed=21)
        maintainer = ContinuousTopK(engine, [0, 1, 2, 3], 5)
        maintainer.attach()
        engine.insert_object(np.full(3, 0.5))
        # the tree insert spends its own navigation distances; the
        # repair's share — what last_stats measures — is exactly m.
        assert maintainer.last_stats.distance_computations == 4
        assert maintainer.last_stats.distance_batches == 1
        maintainer.close()

    def test_delete_costs_zero_distances(self):
        engine = make_engine(n=50, seed=22)
        maintainer = ContinuousTopK(engine, [0, 1], 5)
        maintainer.attach()
        metric = engine.counting_metric
        before = metric.count
        engine.delete_object(30)
        assert metric.count == before
        assert maintainer.last_stats.distance_computations == 0
        maintainer.close()

    def test_bootstrap_cost_is_m_times_n(self):
        engine = make_engine(n=40, seed=23)
        metric = engine.counting_metric
        before = metric.count
        maintainer = ContinuousTopK(engine, [0, 1, 2], 5)
        # pairwise(q, ids) skips d(q, q), hence m * (n - 1) + duplicates
        # of q against the other query objects; bound it instead of
        # pinning the exact off-by-m arithmetic.
        spent = metric.count - before
        assert 3 * 37 <= spent <= 3 * 40
        assert maintainer.bootstrap_stats.distance_computations == spent
        maintainer.close()


# ---------------------------------------------------------------------------
# delta semantics
# ---------------------------------------------------------------------------
class TestResultDeltas:
    def test_entered_left_on_displacing_insert(self):
        engine = make_engine(n=20, seed=24)
        maintainer = ContinuousTopK(engine, [0, 1], 3)
        maintainer.attach()
        seen = []
        maintainer.subscribe(seen.append)
        old = maintainer.result
        # the query objects' own location dominates everything: the
        # arrival enters the result and displaces the old k-th item.
        new_id = engine.insert_object(engine.space.payload(0))
        assert seen, "a displacing insert must emit a delta"
        delta = seen[-1]
        assert delta.op == "insert" and delta.object_id == new_id
        assert any(item.object_id == new_id for item in delta.entered)
        assert delta.left  # someone was displaced from a full top-3
        assert list(delta.result) == maintainer.result
        assert delta.changed
        assert delta.universe_size == 21
        assert [i.object_id for i in old] != [
            i.object_id for i in maintainer.result
        ]
        maintainer.close()

    def test_no_delta_when_result_unchanged(self):
        # 1-D Manhattan with Q at 0.0 and 1.0: every point inside
        # [0, 1] has distance vector (x, 1 - x) — all interior points
        # are pairwise incomparable, so an interior arrival changes no
        # score and must emit nothing.
        space = MetricSpace(
            [np.array([x]) for x in (0.0, 1.0, 0.3, 0.5, 0.7)],
            CountingMetric(ManhattanMetric()),
            name="diag",
        )
        engine = TopKDominatingEngine(space)
        maintainer = ContinuousTopK(engine, [0, 1], 3)
        maintainer.attach()
        seen = []
        maintainer.subscribe(seen.append)
        assert as_pairs(maintainer.result) == [(0, 0), (1, 0), (2, 0)]
        engine.insert_object(np.array([0.4]))  # incomparable to all
        assert seen == []
        assert maintainer.counters["deltas"] == 0
        assert maintainer.counters["updates"] == 1
        assert as_pairs(maintainer.result) == [(0, 0), (1, 0), (2, 0)]
        # a point outside the segment IS dominated (by the 1.0 query
        # object): now a delta must fire, rescoring exactly that one.
        engine.insert_object(np.array([1.2]))
        assert len(seen) == 1
        delta = seen[0]
        assert as_pairs(delta.rescored) == [(1, 1)]
        assert delta.entered == () and delta.left == ()
        assert as_pairs(maintainer.result) == [(1, 1), (0, 0), (2, 0)]
        maintainer.close()

    def test_unsubscribe_stops_delivery(self):
        engine = make_engine(n=15, seed=27)
        maintainer = ContinuousTopK(engine, [0], 2)
        maintainer.attach()
        seen = []
        unsubscribe = maintainer.subscribe(seen.append)
        engine.insert_object(engine.space.payload(0))
        count = len(seen)
        unsubscribe()
        unsubscribe()  # idempotent
        engine.insert_object(engine.space.payload(0))
        assert len(seen) == count
        maintainer.close()


# ---------------------------------------------------------------------------
# repair vs recompute accounting
# ---------------------------------------------------------------------------
class TestRepairHeuristic:
    def test_threshold_validation(self):
        engine = make_engine(n=10, seed=28)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                ContinuousTopK(engine, [0], 2, recompute_threshold=bad)

    def test_tiny_threshold_forces_recomputes(self):
        engine = make_engine(n=25, seed=29)
        maintainer = ContinuousTopK(
            engine, [0, 1], 4, recompute_threshold=1e-9, aux_mirror=False
        )
        maintainer.attach()
        # inserting at a query object's own location dominates every
        # member, so the comparable ball is the whole universe.
        engine.insert_object(engine.space.payload(0))
        assert maintainer.counters["recomputes"] >= 1
        universe = sorted(engine.tree.object_ids())
        assert as_pairs(maintainer.result) == oracle_topk(
            engine.space, [0, 1], universe, 4
        )
        maintainer.close()

    def test_default_threshold_repairs(self):
        engine = make_engine(n=25, seed=30)
        maintainer = ContinuousTopK(engine, [0, 1], 4, aux_mirror=False)
        maintainer.attach()
        rng = np.random.default_rng(31)
        for _ in range(5):
            engine.insert_object(rng.random(3))
        assert maintainer.counters["repairs"] >= 4
        assert maintainer.counters["updates"] == 5
        maintainer.close()

    def test_resync_rebuilds_and_counts(self):
        engine = make_engine(n=20, seed=32)
        maintainer = ContinuousTopK(engine, [0, 1], 3)
        before = as_pairs(maintainer.result)
        delta = maintainer.resync()
        assert delta.kind == "resync" and delta.op == "resync"
        assert as_pairs(maintainer.result) == before
        assert list(delta.result) == maintainer.result
        assert maintainer.counters["resyncs"] == 1
        maintainer.close()


# ---------------------------------------------------------------------------
# edge shapes
# ---------------------------------------------------------------------------
class TestEdgeShapes:
    def test_k_larger_than_universe(self):
        engine = make_engine(n=6, seed=33)
        maintainer = ContinuousTopK(engine, [0], 50)
        assert len(maintainer.result) == 6
        engine_ids = sorted(engine.tree.object_ids())
        assert as_pairs(maintainer.result) == oracle_topk(
            engine.space, [0], engine_ids, 50
        )
        maintainer.close()

    def test_duplicate_payloads_score_identically(self):
        engine = make_engine(n=10, seed=34)
        maintainer = ContinuousTopK(engine, [0, 1], 12)
        maintainer.attach()
        payload = np.full(3, 0.25)
        a = engine.insert_object(np.array(payload))
        b = engine.insert_object(np.array(payload))
        # equal vectors: neither dominates the other (no strict
        # component), so their scores must agree.
        assert maintainer.score_of(a) == maintainer.score_of(b)
        universe = sorted(engine.tree.object_ids())
        assert as_pairs(maintainer.result) == oracle_topk(
            engine.space, [0, 1], universe, 12
        )
        maintainer.close()

    def test_duplicate_add_and_absent_remove_are_noops(self):
        engine = make_engine(n=10, seed=35)
        maintainer = ContinuousTopK(engine, [0], 3)
        assert maintainer.add_object(4) is None  # already a member
        assert maintainer.remove_object(999) is None
        assert maintainer.counters["updates"] == 0
        maintainer.close()

    def test_standing_query_validation(self):
        with pytest.raises(ValueError):
            StandingQuery((), 3)
        with pytest.raises(ValueError):
            StandingQuery((1, 2), 0)
        assert StandingQuery((1, 2, 3), 2).m == 3

    def test_empty_universe_bootstrap(self):
        engine = make_engine(n=5, seed=36)
        maintainer = ContinuousTopK(engine, [0], 3, universe=[])
        assert maintainer.result == []
        assert len(maintainer) == 0
        maintainer.add_object(2)
        assert as_pairs(maintainer.result) == oracle_topk(
            engine.space, [0], [2], 3
        )
        maintainer.close()
