"""M-tree bulk loading (pivot-order packing)."""

import random

import pytest

from repro.mtree import MTree, bulk_build, knn_query, range_query
from repro.mtree.queries import IncrementalNNCursor
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


def build_pair(n=300, seed=11, grid=None, capacity=12):
    """The same data bulk-loaded and insert-loaded."""
    space_a = make_vector_space(n, dims=3, seed=seed, grid=grid)
    space_b = make_vector_space(n, dims=3, seed=seed, grid=grid)
    bulk = bulk_build(
        space_a,
        LRUBuffer(PageManager(), capacity=64),
        node_capacity=capacity,
        rng=random.Random(seed),
    )
    incremental = MTree.build(
        space_b,
        LRUBuffer(PageManager(), capacity=64),
        node_capacity=capacity,
        rng=random.Random(seed),
    )
    return bulk, space_a, incremental, space_b


class TestStructure:
    def test_invariants_hold(self):
        bulk, _sa, _inc, _sb = build_pair()
        bulk.check_invariants()

    def test_all_objects_indexed(self):
        bulk, space, _inc, _sb = build_pair(n=250)
        assert len(bulk) == 250
        assert set(bulk.object_ids()) == set(space.object_ids)

    def test_uniform_leaf_depth_with_duplicates(self):
        bulk, _sa, _inc, _sb = build_pair(n=200, grid=2)
        bulk.check_invariants()  # includes the equal-depth assertion

    def test_empty_and_tiny_inputs(self):
        space = make_vector_space(0, dims=2, seed=12)
        tree = bulk_build(
            space, LRUBuffer(PageManager(), capacity=8), node_capacity=4
        )
        assert len(tree) == 0
        space1 = make_vector_space(1, dims=2, seed=12)
        tree1 = bulk_build(
            space1, LRUBuffer(PageManager(), capacity=8), node_capacity=4
        )
        assert len(tree1) == 1
        assert list(IncrementalNNCursor(tree1, 0))[0][0] == 0

    def test_fill_factor_validation(self):
        space = make_vector_space(10, dims=2, seed=13)
        with pytest.raises(ValueError):
            bulk_build(
                space,
                LRUBuffer(PageManager(), capacity=8),
                fill_factor=0.1,
            )


class TestQueryEquivalence:
    def test_knn_matches_insert_built_tree(self):
        bulk, sa, incremental, sb = build_pair()
        for query in (0, 123, 299):
            a = [d for _i, d in knn_query(bulk, query, 12)]
            b = [d for _i, d in knn_query(incremental, query, 12)]
            assert a == pytest.approx(b)

    def test_range_matches(self):
        bulk, sa, incremental, sb = build_pair()
        a = {i for i, _d in range_query(bulk, 7, 0.4)}
        b = {i for i, _d in range_query(incremental, 7, 0.4)}
        assert a == b

    def test_incremental_stream_sorted_and_complete(self):
        bulk, space, _inc, _sb = build_pair(n=200)
        stream = list(IncrementalNNCursor(bulk, 3))
        assert len(stream) == 200
        dists = [d for _i, d in stream]
        assert all(x <= y + 1e-12 for x, y in zip(dists, dists[1:]))


class TestBuildCost:
    def test_bulk_build_uses_far_fewer_distances(self):
        space_a = make_vector_space(400, dims=3, seed=14)
        space_b = make_vector_space(400, dims=3, seed=14)
        before = space_a.metric.count
        bulk_build(
            space_a,
            LRUBuffer(PageManager(), capacity=64),
            node_capacity=16,
            rng=random.Random(14),
        )
        bulk_cost = space_a.metric.count - before
        before = space_b.metric.count
        MTree.build(
            space_b,
            LRUBuffer(PageManager(), capacity=64),
            node_capacity=16,
            rng=random.Random(14),
        )
        insert_cost = space_b.metric.count - before
        assert bulk_cost < insert_cost / 2


class TestDynamicAfterBulk:
    def test_insert_and_delete_after_bulk(self):
        bulk, space, _inc, _sb = build_pair(n=150)
        new_id = space.append(space.payload(0))
        bulk.insert(new_id)
        assert bulk.delete(3)
        bulk.check_invariants()
        stream = {i for i, _d in IncrementalNNCursor(bulk, 0)}
        assert new_id in stream and 3 not in stream

    def test_algorithms_run_on_bulk_tree(self):
        from repro.core.brute_force import brute_force_scores
        from repro.core.pba import PBA2
        from repro.core.progressive import QueryContext
        from repro.storage.buffer import BufferPool

        space = make_vector_space(150, dims=3, seed=15)
        pool = BufferPool()
        tree = bulk_build(
            space,
            pool.index_buffer,
            node_capacity=12,
            rng=random.Random(15),
        )
        ctx = QueryContext(space=space, tree=tree, buffers=pool)
        queries = [0, 75, 149]
        truth = brute_force_scores(space, queries)
        results = list(PBA2(ctx).run(queries, 6))
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:6]
