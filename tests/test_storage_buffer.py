"""Unit tests for the LRU buffer pools."""

import pytest

from repro.storage.buffer import BufferPool, LRUBuffer
from repro.storage.pages import PageManager


def make_buffer(capacity=3):
    mgr = PageManager()
    return mgr, LRUBuffer(mgr, capacity=capacity)


class TestLRUBasics:
    def test_first_read_is_fault(self):
        mgr, buf = make_buffer()
        page_id = mgr.allocate()
        buf.get(page_id)
        assert buf.stats.page_faults == 1
        assert buf.stats.buffer_hits == 0

    def test_second_read_is_hit(self):
        mgr, buf = make_buffer()
        page_id = mgr.allocate()
        buf.get(page_id)
        buf.get(page_id)
        assert buf.stats.page_faults == 1
        assert buf.stats.buffer_hits == 1

    def test_lru_eviction_order(self):
        mgr, buf = make_buffer(capacity=2)
        a, b, c = (mgr.allocate() for _ in range(3))
        buf.get(a)
        buf.get(b)
        buf.get(c)  # evicts a
        assert a not in buf
        assert b in buf and c in buf

    def test_access_refreshes_recency(self):
        mgr, buf = make_buffer(capacity=2)
        a, b, c = (mgr.allocate() for _ in range(3))
        buf.get(a)
        buf.get(b)
        buf.get(a)  # a is now most recent
        buf.get(c)  # evicts b
        assert b not in buf
        assert a in buf

    def test_dirty_page_written_back_on_eviction(self):
        mgr, buf = make_buffer(capacity=1)
        a, b = mgr.allocate(payload=[]), mgr.allocate()
        page = buf.get(a)
        page.payload.append("x")
        buf.put(page)
        buf.get(b)  # evicts a, must flush
        assert mgr.read_page(a).payload == ["x"]
        assert not mgr.read_page(a).dirty

    def test_put_marks_dirty_and_counts_write(self):
        mgr, buf = make_buffer()
        page = buf.get(mgr.allocate())
        buf.put(page)
        assert page.dirty
        assert buf.stats.logical_writes == 1

    def test_zero_capacity_disables_caching(self):
        mgr, buf = make_buffer(capacity=0)
        page_id = mgr.allocate()
        buf.get(page_id)
        buf.get(page_id)
        assert buf.stats.page_faults == 2
        assert buf.stats.buffer_hits == 0

    def test_negative_capacity_rejected(self):
        mgr = PageManager()
        with pytest.raises(ValueError):
            LRUBuffer(mgr, capacity=-1)

    def test_new_page_is_resident_and_dirty(self):
        mgr, buf = make_buffer()
        page = buf.new_page(payload="p")
        assert page.page_id in buf
        assert page.dirty

    def test_free_page_removes_everywhere(self):
        mgr, buf = make_buffer()
        page = buf.new_page()
        buf.free_page(page.page_id)
        assert page.page_id not in buf
        assert page.page_id not in mgr

    def test_invalidate_keeps_disk_copy(self):
        mgr, buf = make_buffer()
        page = buf.new_page()
        buf.invalidate(page.page_id)
        assert page.page_id not in buf
        assert page.page_id in mgr

    def test_flush_writes_dirty_frames(self):
        mgr, buf = make_buffer()
        page = buf.new_page(payload=[1])
        buf.flush()
        assert not mgr.read_page(page.page_id).dirty

    def test_resize_shrink_evicts(self):
        mgr, buf = make_buffer(capacity=4)
        ids = [mgr.allocate() for _ in range(4)]
        for page_id in ids:
            buf.get(page_id)
        buf.resize(1)
        assert len(buf) == 1
        assert ids[-1] in buf

    def test_hit_ratio(self):
        mgr, buf = make_buffer()
        page_id = mgr.allocate()
        buf.get(page_id)
        buf.get(page_id)
        buf.get(page_id)
        assert buf.stats.hit_ratio == pytest.approx(2 / 3)


class TestBufferPool:
    def test_sizing_rule_applies_fractions(self):
        pool = BufferPool()
        pool.size_for(index_pages=1000, dataset_pages=10_000)
        assert pool.index_buffer.capacity == 100
        assert pool.aux_buffer.capacity == 2000

    def test_sizing_rule_floors(self):
        pool = BufferPool()
        pool.size_for(index_pages=10, dataset_pages=20)
        assert pool.index_buffer.capacity == BufferPool.MIN_INDEX_FRAMES
        assert pool.aux_buffer.capacity == BufferPool.MIN_AUX_FRAMES

    def test_combined_io_merges_both(self):
        pool = BufferPool()
        a = pool.index_manager.allocate()
        b = pool.aux_manager.allocate()
        pool.index_buffer.get(a)
        pool.aux_buffer.get(b)
        assert pool.combined_io().page_faults == 2
        assert pool.combined_io().logical_reads == 2

    def test_reset_stats(self):
        pool = BufferPool()
        pool.index_buffer.get(pool.index_manager.allocate())
        pool.reset_stats()
        assert pool.combined_io().page_faults == 0

    def test_clear_empties_buffers(self):
        pool = BufferPool()
        page = pool.aux_buffer.new_page()
        pool.clear()
        assert page.page_id not in pool.aux_buffer


class TestThreadLocalAttribution:
    def test_local_stats_alias_global_single_threaded(self):
        mgr, buf = make_buffer()
        buf.get(mgr.allocate())
        assert buf.local_stats() is buf.stats

    def test_local_stats_partition_global_across_threads(self):
        import threading

        mgr, buf = make_buffer(capacity=8)
        buf.make_thread_safe()
        pages = [mgr.allocate() for _ in range(6)]
        per_thread = {}

        def worker(tag, my_pages, repeats):
            before = buf.local_stats().snapshot()
            for _ in range(repeats):
                for page_id in my_pages:
                    buf.get(page_id)
            per_thread[tag] = buf.local_stats().delta_since(before)

        threads = [
            threading.Thread(target=worker, args=("x", pages[:3], 2)),
            threading.Thread(target=worker, args=("y", pages[3:], 3)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # each thread is charged exactly its own accesses...
        assert per_thread["x"].logical_reads == 6
        assert per_thread["y"].logical_reads == 9
        # ...and fault/hit attribution partitions the global counters
        # exactly (each access increments both views once).
        total = buf.stats
        assert (
            per_thread["x"].page_faults + per_thread["y"].page_faults
            == total.page_faults
        )
        assert (
            per_thread["x"].buffer_hits + per_thread["y"].buffer_hits
            == total.buffer_hits
        )
        assert total.logical_reads == 15

    def test_pool_local_io_merges_thread_views(self):
        pool = BufferPool()
        pool.make_thread_safe()
        pool.index_buffer.get(pool.index_manager.allocate())
        pool.aux_buffer.get(pool.aux_manager.allocate())
        local = pool.local_io()
        assert local.page_faults == 2
        assert local.logical_reads == 2
