"""Exact-score procedures (ExactScore-RS / ExactScore-AUX) vs brute force.

These tests drive the AuxB+-tree with a faithful round-robin retrieval
simulation (sorted distance lists play the incremental-NN streams) and
check Lemma 7 / Procedure 3 against the quadratic oracle, including the
tie-heavy cases the procedures' equivalence corrections exist for.
"""

import itertools

import pytest

from repro.core.aux_index import AuxBPlusTree
from repro.core.dominance import DistanceVectorSource
from repro.core.scoring import exact_score_aux, exact_score_reverse_scan
from repro.core.brute_force import brute_force_scores
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager

from tests.conftest import make_vector_space


class _SimulatedRun:
    """Round-robin retrieval over sorted distance lists, with the same
    tie-draining PBA performs when an object becomes common."""

    def __init__(self, space, query_ids):
        self.space = space
        self.m = len(query_ids)
        self.query_ids = query_ids
        self.source = DistanceVectorSource(space, query_ids)
        buf = LRUBuffer(PageManager(), capacity=256)
        self.aux = AuxBPlusTree(buf, m=self.m)
        self.orders = [
            sorted(
                space.object_ids,
                key=lambda i, q=q: (space.distance(i, q), i),
            )
            for q in query_ids
        ]
        self.positions = [0] * self.m
        self.common = []

    def _note(self, j):
        object_id = self.orders[j][self.positions[j]]
        self.positions[j] += 1
        distance = self.space.distance(object_id, self.query_ids[j])
        rec = self.aux.note_retrieval(j, object_id, distance)
        if rec.is_common:
            self.common.append(rec)

    def advance_until_common(self):
        """Retrieve round-robin until a new common neighbor appears,
        then drain its ties and resolve eq (PBA's Procedure 1)."""
        start = len(self.common)
        for j in itertools.cycle(range(self.m)):
            if all(p >= len(self.orders[0]) for p in self.positions):
                return None
            if self.positions[j] < len(self.orders[j]):
                self._note(j)
            if len(self.common) > start:
                break
        rec = self.common[-1]
        self._drain_ties(rec)
        self._resolve_eq(rec)
        return rec

    def _drain_ties(self, rec):
        for j in range(self.m):
            target = rec.dists[j]
            while self.positions[j] < len(self.orders[j]):
                nxt = self.orders[j][self.positions[j]]
                if self.space.distance(nxt, self.query_ids[j]) != target:
                    break
                self._note(j)

    def _resolve_eq(self, rec):
        eq = 0
        log0 = self.aux.logs[0]
        rank = rec.lpos[0]
        while rank <= len(log0):
            other_id, other_dist = log0.entry(rank)
            if other_dist != rec.dists[0]:
                break
            if other_id != rec.object_id:
                other = self.aux.get(other_id)
                if other.is_complete and other.dists == rec.dists:
                    eq += 1
            rank += 1
        rec.eq = eq
        self.aux.update(rec)


@pytest.fixture(params=[(30, None, 0), (40, 3, 1), (25, 2, 2), (35, None, 3)])
def run(request):
    n, grid, seed = request.param
    space = make_vector_space(n=n, dims=2, seed=seed, grid=grid)
    query_ids = [0, n // 2]
    return _SimulatedRun(space, query_ids), space, query_ids


class TestReverseScanScore:
    def test_matches_brute_force_for_all_commons(self, run):
        sim, space, queries = run
        truth = brute_force_scores(space, queries)
        epoch = itertools.count()
        while True:
            rec = sim.advance_until_common()
            if rec is None:
                break
            outcome = exact_score_reverse_scan(
                sim.aux, rec, len(space), epoch=next(epoch), use_iph=False
            )
            assert outcome.score == truth[rec.object_id], rec.object_id

    def test_dominated_list_is_exact(self, run):
        sim, space, queries = run
        source = DistanceVectorSource(space, queries)
        rec = sim.advance_until_common()
        outcome = exact_score_reverse_scan(
            sim.aux, rec, len(space), epoch=0, use_iph=False
        )
        for other in outcome.dominated:
            assert source.dominates(rec.object_id, other.object_id)

    def test_iph_aborts_when_bound_met(self, run):
        sim, space, queries = run
        rec = sim.advance_until_common()
        # an absurdly high pruning value forces an immediate abort.
        outcome = exact_score_reverse_scan(
            sim.aux,
            rec,
            len(space),
            epoch=0,
            pruning_value=len(space) * 10,
            use_iph=True,
        )
        assert outcome.score is None

    def test_iph_disabled_ignores_pruning_value(self, run):
        sim, space, queries = run
        truth = brute_force_scores(space, queries)
        rec = sim.advance_until_common()
        outcome = exact_score_reverse_scan(
            sim.aux,
            rec,
            len(space),
            epoch=0,
            pruning_value=len(space) * 10,
            use_iph=False,
        )
        assert outcome.score == truth[rec.object_id]


class TestAuxScore:
    def test_matches_brute_force_for_all_commons(self, run):
        sim, space, queries = run
        truth = brute_force_scores(space, queries)
        while True:
            rec = sim.advance_until_common()
            if rec is None:
                break
            outcome = exact_score_aux(sim.aux, rec, len(space))
            assert outcome.score == truth[rec.object_id], rec.object_id

    def test_agrees_with_reverse_scan(self, run):
        sim, space, queries = run
        epoch = itertools.count()
        while True:
            rec = sim.advance_until_common()
            if rec is None:
                break
            rs = exact_score_reverse_scan(
                sim.aux, rec, len(space), epoch=next(epoch), use_iph=False
            )
            aux = exact_score_aux(sim.aux, rec, len(space))
            assert rs.score == aux.score

    def test_dominated_list_is_exact(self, run):
        sim, space, queries = run
        source = DistanceVectorSource(space, queries)
        rec = sim.advance_until_common()
        outcome = exact_score_aux(sim.aux, rec, len(space))
        for other in outcome.dominated:
            if other.is_complete:
                assert source.dominates(rec.object_id, other.object_id)
