"""The API-surface snapshot stays in sync and catches drift."""

from pathlib import Path

from repro.api import surface

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "docs" / "api-surface.txt"


class TestSnapshot:
    def test_committed_snapshot_matches_live_surface(self):
        """Mirrors the CI step: any public-surface change must come
        with a regenerated docs/api-surface.txt."""
        diff = surface.check_surface(SNAPSHOT)
        assert not diff, "\n".join(
            ["API surface drifted (python -m repro.api.surface):"] + diff
        )

    def test_check_flags_an_undocumented_export(self, tmp_path):
        doctored = tmp_path / "api-surface.txt"
        doctored.write_text(
            SNAPSHOT.read_text().replace("def open_engine", "def open_motor")
        )
        assert surface.check_surface(doctored)

    def test_check_flags_a_missing_snapshot(self, tmp_path):
        assert surface.check_surface(tmp_path / "nope.txt")

    def test_render_is_deterministic(self):
        assert surface.render_surface() == surface.render_surface()

    def test_signatures_carry_no_annotations(self):
        text = SNAPSHOT.read_text()
        assert ": int" not in text
        assert "->" not in text

    def test_unstable_defaults_are_elided(self):
        # no memory addresses or sentinel reprs may leak into the
        # snapshot — they would churn on every run.
        text = SNAPSHOT.read_text()
        assert "0x" not in text
        assert "object object" not in text


class TestFormatting:
    def test_stable_defaults_render_literally(self):
        def sample(a, b=1, c="x", d=None, *args, e=2.5, **kw):
            return a, b, c, d, args, e, kw

        assert (
            surface._fmt_signature(sample)
            == "(a, b=1, c='x', d=None, *args, e=2.5, **kw)"
        )

    def test_unstable_default_becomes_ellipsis(self):
        sentinel = object()

        def sample(a=sentinel):
            return a

        assert surface._fmt_signature(sample) == "(a=...)"

    def test_keyword_only_marker(self):
        def sample(a, *, b=1):
            return a, b

        assert surface._fmt_signature(sample) == "(a, *, b=1)"
