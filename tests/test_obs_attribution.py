"""Cost-attribution invariants of the span tracer.

Two load-bearing identities:

1. **Span == QueryStats.**  The ``engine.query`` span's cost delta is
   read by the same probe, over the same thread-local counters, across
   the same window as the engine's own stats accounting — so the two
   must agree *exactly*, per query, for every algorithm (hypothesis
   property).
2. **Spans sum to the globals.**  Per-thread counters partition the
   global ones, so summing every ``engine.query`` span's delta across
   concurrently executing workers must reproduce the global counter
   movement exactly (cache and coalescing disabled so every request
   reaches the engine).
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import Tracer
from repro.service.server import QueryService, ServiceConfig
from tests.conftest import make_engine


def _engine_query_spans(tracer: Tracer):
    return [s for s in tracer.spans() if s.name == "engine.query"]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=12),
    m=st.integers(min_value=1, max_value=5),
    algorithm=st.sampled_from(["sba", "aba", "pba1", "pba2"]),
)
def test_engine_span_costs_equal_query_stats(seed, k, m, algorithm):
    engine = make_engine(n=90, dims=3, seed=seed % 7)
    query_ids = [(seed + 13 * i) % 90 for i in range(m)]
    tracer = Tracer()
    with tracer.trace("request"):
        _results, stats = engine.top_k_dominating(
            sorted(set(query_ids)), k, algorithm=algorithm
        )
    (span,) = _engine_query_spans(tracer)
    assert span.costs is not None
    assert span.costs.page_faults == stats.io.page_faults
    assert span.costs.buffer_hits == stats.io.buffer_hits
    assert span.costs.distance_computations == stats.distance_computations
    assert (
        span.costs.exact_score_computations
        == stats.exact_score_computations
    )


def test_phase_spans_partition_the_query():
    """Child phase spans never exceed their engine.query parent."""
    engine = make_engine(n=120, dims=3, seed=4)
    tracer = Tracer()
    with tracer.trace("request"):
        _results, stats = engine.top_k_dominating([1, 2, 3], 10)
    spans = tracer.spans()
    (query_span,) = _engine_query_spans(tracer)
    children = [
        s
        for s in spans
        if s.parent_id == query_span.span_id and s.costs is not None
    ]
    assert children, "pba phase spans must nest under engine.query"
    for axis in ("page_faults", "distance_computations"):
        child_sum = sum(getattr(s.costs, axis) for s in children)
        assert child_sum <= getattr(query_span.costs, axis)


def test_concurrent_span_sums_equal_global_counters():
    engine = make_engine(n=130, dims=3, seed=6)
    tracer = Tracer()
    config = ServiceConfig(
        workers=4,
        cache_capacity=0,  # no cache: every request executes
        io_model=False,
        tracer=tracer,
    )
    service = QueryService(engine, config)
    global_io_before = engine.buffers.combined_io()
    dist_before = engine.counting_metric.count

    async def drive():
        # distinct query sets so single-flight never coalesces them.
        await asyncio.gather(
            *(
                service.query([i, i + 7, i + 23], 6)
                for i in range(12)
            )
        )

    with service:
        asyncio.run(drive())

    spans = _engine_query_spans(tracer)
    assert len(spans) == 12
    workers = {s.thread_id for s in spans}
    assert len(workers) > 1, "queries must actually run on several workers"

    global_io = engine.buffers.combined_io().delta_since(global_io_before)
    assert (
        sum(s.costs.page_faults for s in spans) == global_io.page_faults
    )
    assert sum(s.costs.buffer_hits for s in spans) == global_io.buffer_hits
    assert (
        sum(s.costs.distance_computations for s in spans)
        == engine.counting_metric.count - dist_before
    )


def test_request_trace_structure_under_service():
    """service.request roots own their engine.query via the copied context."""
    engine = make_engine(n=100, dims=3, seed=8)
    tracer = Tracer()
    service = QueryService(
        engine,
        ServiceConfig(workers=2, cache_capacity=8, tracer=tracer),
    )

    async def drive():
        await service.query([1, 2, 3], 5)
        await service.query([1, 2, 3], 5)  # served from cache

    with service:
        asyncio.run(drive())

    spans = tracer.spans()
    roots = [s for s in spans if s.name == "service.request"]
    assert len(roots) == 2
    by_trace = {r.trace_id: r for r in roots}
    engine_spans = _engine_query_spans(tracer)
    assert len(engine_spans) == 1  # second request was a cache hit
    # the worker-side span belongs to the first request's trace.
    assert engine_spans[0].trace_id in by_trace
    cold = by_trace[engine_spans[0].trace_id]
    assert cold.args["cached"] is False
    hits = [r for r in roots if r.args["cached"]]
    assert len(hits) == 1
    lookups = [s for s in spans if s.name == "service.cache_lookup"]
    assert [s.args["hit"] for s in lookups] == [False, True]
