"""Tests for repro.obs.monitor: store, scrape loop, health report."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.monitor import (
    HealthLimits,
    MONITOR_FORMAT,
    Monitor,
    TimeSeriesStore,
    compute_health,
    load_monitor_document,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import ThresholdRule


def make_store(capacity=512):
    registry = MetricsRegistry()
    counter = registry.counter("events")
    gauge = registry.gauge("depth")
    hist = registry.histogram("lat", bounds=(0.01, 0.1, 1.0))
    store = TimeSeriesStore(registry, capacity=capacity, clock=lambda: 0.0)
    return registry, counter, gauge, hist, store


class TestTimeSeriesStore:
    def test_scrape_retains_scalar_leaves(self):
        registry, counter, gauge, hist, store = make_store()
        counter.inc(3)
        gauge.set(7)
        store.scrape(now=1.0)
        counter.inc(2)
        store.scrape(now=2.0)
        assert store.series("instruments.events") == [(1.0, 3.0), (2.0, 5.0)]
        assert store.latest("instruments.depth") == 7.0
        assert "instruments.events" in store.paths()

    def test_collector_sections_are_retained(self):
        registry, *_, store = make_store()
        registry.register_collector("svc", lambda: {"requests": {"n": 4}})
        store.scrape(now=1.0)
        assert store.latest("svc.requests.n") == 4.0

    def test_strings_and_lists_are_skipped(self):
        registry, *_, store = make_store()
        registry.register_collector(
            "svc", lambda: {"name": "x", "items": [1, 2], "ok": True}
        )
        store.scrape(now=1.0)
        assert store.latest("svc.ok") == 1.0  # bools retained as 0/1
        assert store.latest("svc.name") is None
        assert store.latest("svc.items") is None

    def test_nan_and_inf_are_skipped(self):
        registry, *_, store = make_store()
        registry.register_collector(
            "svc", lambda: {"nan": float("nan"), "inf": math.inf, "v": 1}
        )
        store.scrape(now=1.0)
        assert store.latest("svc.nan") is None
        assert store.latest("svc.inf") is None
        assert store.latest("svc.v") == 1.0

    def test_capacity_bounds_history(self):
        registry, counter, *_, store = make_store(capacity=4)
        for i in range(10):
            counter.inc()
            store.scrape(now=float(i))
        points = store.series("instruments.events")
        assert len(points) == 4
        assert points[0] == (6.0, 7.0)

    def test_capacity_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TimeSeriesStore(registry, capacity=1)

    def test_delta_and_rate_exact_over_window(self):
        registry, counter, *_, store = make_store()
        # 10 events/s for 10 s
        for i in range(1, 11):
            counter.inc(10)
            store.scrape(now=float(i))
        assert store.delta("instruments.events", 5.0, now=10.0) == 50.0
        assert store.rate(
            "instruments.events", 5.0, now=10.0
        ) == pytest.approx(10.0)

    def test_window_falls_back_to_earliest_point(self):
        registry, counter, *_, store = make_store()
        counter.inc(5)
        store.scrape(now=1.0)
        counter.inc(5)
        store.scrape(now=2.0)
        # a 100 s window only has 1 s of history: use what exists
        assert store.delta("instruments.events", 100.0, now=2.0) == 5.0

    def test_single_point_has_no_delta(self):
        registry, counter, *_, store = make_store()
        counter.inc()
        store.scrape(now=1.0)
        assert store.delta("instruments.events", 10.0, now=1.0) is None
        assert store.rate("instruments.events", 10.0, now=1.0) is None

    def test_unknown_series(self):
        *_, store = make_store()
        assert store.latest("nope") is None
        assert store.delta("nope", 1.0, now=1.0) is None
        assert store.series("nope") == []

    def test_mean_over_window(self):
        registry, _, gauge, _, store = make_store()
        for i, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            gauge.set(value)
            store.scrape(now=float(i))
        assert store.mean("instruments.depth", 1.5, now=3.0) == 3.5
        assert store.mean("instruments.depth", 10.0, now=3.0) == 2.5

    def test_fraction_over_from_bucket_deltas(self):
        registry, counter, gauge, hist, store = make_store()
        store.scrape(now=0.0)
        for _ in range(8):
            hist.observe(0.005)
        for _ in range(2):
            hist.observe(0.5)
        store.scrape(now=1.0)
        for _ in range(10):
            hist.observe(0.005)
        store.scrape(now=2.0)
        # whole run: 2 bad of 20
        assert store.fraction_over(
            "instruments.lat", 0.1, 100.0, now=2.0
        ) == pytest.approx(0.1)
        # last second only: all good
        assert store.fraction_over(
            "instruments.lat", 0.1, 1.0, now=2.0
        ) == pytest.approx(0.0)

    def test_fraction_over_no_observations_is_none(self):
        registry, counter, gauge, hist, store = make_store()
        store.scrape(now=1.0)
        store.scrape(now=2.0)
        assert store.fraction_over(
            "instruments.lat", 0.1, 10.0, now=2.0
        ) is None

    def test_rolling_quantile_interpolates(self):
        registry, counter, gauge, hist, store = make_store()
        store.scrape(now=0.0)
        for _ in range(100):
            hist.observe(0.05)  # all in the (0.01, 0.1] bucket
        store.scrape(now=1.0)
        q50 = store.rolling_quantile("instruments.lat", 0.5, 10.0, now=1.0)
        assert 0.01 < q50 <= 0.1

    def test_rolling_quantile_inf_bucket_clamps(self):
        registry, counter, gauge, hist, store = make_store()
        store.scrape(now=0.0)
        for _ in range(10):
            hist.observe(50.0)  # beyond every finite bound
        store.scrape(now=1.0)
        assert store.rolling_quantile(
            "instruments.lat", 0.99, 10.0, now=1.0
        ) == 1.0

    def test_rolling_quantile_validation(self):
        *_, store = make_store()
        with pytest.raises(ValueError):
            store.rolling_quantile("instruments.lat", 0.0, 1.0)

    def test_histogram_exports_also_scalarised(self):
        registry, counter, gauge, hist, store = make_store()
        hist.observe(0.05)
        store.scrape(now=1.0)
        assert store.latest("instruments.lat.count") == 1.0
        assert store.latest("instruments.lat.sum") == pytest.approx(0.05)
        assert "instruments.lat" in store.histogram_paths()

    def test_snapshot_plain_types(self):
        registry, counter, gauge, hist, store = make_store()
        store.scrape(now=1.0)
        snap = store.snapshot()
        assert snap["scrapes"] == 1
        json.dumps(snap)


class TestMonitor:
    def make_monitor(self, **kwargs):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        clock = {"t": 0.0}
        monitor = Monitor(
            registry,
            rules=[ThresholdRule("instruments.events", ">", 5.0)],
            interval=1.0,
            clock=lambda: clock["t"],
            **kwargs,
        )
        return registry, counter, clock, monitor

    def test_tick_scrapes_and_evaluates(self):
        registry, counter, clock, monitor = self.make_monitor()
        counter.inc(3)
        monitor.tick(now=1.0)
        assert monitor.ticks == 1
        assert monitor.alerts.active() == []
        counter.inc(10)
        monitor.tick(now=2.0)
        [alert] = monitor.alerts.active()
        assert alert["state"] == "firing"

    def test_export_document_shape(self):
        registry, counter, clock, monitor = self.make_monitor()
        counter.inc()
        monitor.tick(now=1.0)
        document = monitor.export()
        assert document["format"] == MONITOR_FORMAT
        assert document["ticks"] == 1
        assert document["series"]["instruments.events"] == [[1.0, 1.0]]
        assert "alerts" in document
        json.dumps(document)

    def test_export_points_bound(self):
        registry, counter, clock, monitor = self.make_monitor()
        monitor.export_points = 3
        for i in range(1, 9):
            counter.inc()
            monitor.tick(now=float(i))
        points = monitor.export()["series"]["instruments.events"]
        assert len(points) == 3

    def test_write_and_load_round_trip(self, tmp_path):
        registry, counter, clock, monitor = self.make_monitor()
        counter.inc()
        monitor.tick(now=1.0)
        path = tmp_path / "mon.json"
        monitor.write(str(path))
        document = load_monitor_document(str(path))
        assert document["format"] == MONITOR_FORMAT
        assert not (tmp_path / "mon.json.tmp").exists()  # atomic publish

    def test_out_path_published_every_tick(self, tmp_path):
        path = tmp_path / "live.json"
        registry, counter, clock, monitor = self.make_monitor(
            out_path=str(path)
        )
        monitor.tick(now=1.0)
        first = load_monitor_document(str(path))
        monitor.tick(now=2.0)
        second = load_monitor_document(str(path))
        assert (first["ticks"], second["ticks"]) == (1, 2)

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="repro-monitor/1"):
            load_monitor_document(str(path))

    def test_health_source_lands_in_export(self):
        registry, counter, clock, monitor = self.make_monitor()
        monitor.health_source = lambda: {"status": "ok", "checks": {}}
        monitor.tick(now=1.0)
        assert monitor.export()["health"]["status"] == "ok"

    def test_broken_health_source_is_contained(self):
        registry, counter, clock, monitor = self.make_monitor()

        def broken():
            raise RuntimeError("nope")

        monitor.health_source = broken
        monitor.tick(now=1.0)
        assert monitor.export()["health"] is None

    def test_thread_start_stop(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        monitor = Monitor(registry, interval=0.01)
        monitor.start()
        assert monitor.running
        monitor.start()  # idempotent
        import time

        time.sleep(0.05)
        monitor.stop()
        assert not monitor.running
        assert monitor.ticks >= 1

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Monitor(MetricsRegistry(), interval=0.0)


class TestComputeHealth:
    def test_everything_absent_is_ok(self):
        health = compute_health()
        assert health["status"] == "ok"
        assert set(health["checks"]) == {
            "alerts", "durability", "breakers", "subscriptions", "faults"
        }

    def test_firing_warn_degrades(self):
        health = compute_health(
            alerts=[{"rule": "r", "severity": "warn", "state": "firing"}]
        )
        assert health["status"] == "degraded"
        assert "r" in health["checks"]["alerts"]["detail"]

    def test_firing_critical_is_unhealthy(self):
        health = compute_health(
            alerts=[
                {"rule": "a", "severity": "warn", "state": "firing"},
                {"rule": "b", "severity": "critical", "state": "firing"},
            ]
        )
        assert health["status"] == "unhealthy"

    def test_pending_alert_stays_ok(self):
        health = compute_health(
            alerts=[{"rule": "r", "severity": "critical", "state": "pending"}]
        )
        assert health["status"] == "ok"

    def test_wal_growth_degrades(self):
        health = compute_health(
            recovery={"gauges": {"wal_bytes": 100.0,
                                 "seconds_since_checkpoint": 1.0}},
            limits=HealthLimits(max_wal_bytes=50),
        )
        assert health["status"] == "degraded"
        assert "WAL" in health["checks"]["durability"]["detail"]

    def test_stale_checkpoint_degrades(self):
        health = compute_health(
            recovery={"gauges": {"wal_bytes": 1.0,
                                 "seconds_since_checkpoint": 1000.0}},
            limits=HealthLimits(max_checkpoint_age=600.0),
        )
        assert health["status"] == "degraded"

    def test_healthy_durability(self):
        health = compute_health(
            recovery={"gauges": {"wal_bytes": 10.0,
                                 "seconds_since_checkpoint": 1.0}},
        )
        assert health["checks"]["durability"]["status"] == "ok"

    def test_one_open_breaker_degrades(self):
        health = compute_health(
            distributed={"sites": [
                {"site_id": 0, "breaker": {"state": "closed"}},
                {"site_id": 1, "breaker": {"state": "open"}},
            ]}
        )
        assert health["status"] == "degraded"
        assert "1" in health["checks"]["breakers"]["detail"]

    def test_all_breakers_open_is_unhealthy(self):
        health = compute_health(
            distributed={"sites": [
                {"site_id": 0, "breaker": {"state": "open"}},
                {"site_id": 1, "breaker": {"state": "half_open"}},
            ]}
        )
        assert health["status"] == "unhealthy"

    def test_subscription_backlog_degrades(self):
        health = compute_health(
            subscriptions={"active": 1, "pending_deltas": 500,
                           "per_subscription": []},
            limits=HealthLimits(max_pending_deltas=256),
        )
        assert health["status"] == "degraded"

    def test_pending_resync_degrades(self):
        health = compute_health(
            subscriptions={"active": 1, "pending_deltas": 0,
                           "per_subscription": [{"resync_pending": True}]},
        )
        assert health["status"] == "degraded"
        assert "resync" in health["checks"]["subscriptions"]["detail"]

    def test_fatal_faults_degrade(self):
        health = compute_health(requests={"faults_fatal": 2})
        assert health["status"] == "degraded"

    def test_verdict_is_worst_check(self):
        health = compute_health(
            alerts=[{"rule": "x", "severity": "critical", "state": "firing"}],
            requests={"faults_fatal": 1},
        )
        assert health["status"] == "unhealthy"
        json.dumps(health)
