"""SBA-specific behaviour (Algorithm 1)."""

import random

import pytest

from repro import SBA
from repro.core.brute_force import brute_force_scores

from tests.conftest import make_engine


@pytest.fixture
def engine():
    return make_engine(n=130, seed=21)


def truth_scores(engine, queries):
    return brute_force_scores(engine.space, queries)


class TestCorrectness:
    def test_matches_oracle(self, engine):
        queries = [3, 60, 100]
        truth = truth_scores(engine, queries)
        results = list(SBA(engine.make_context()).run(queries, 6))
        expected = sorted(truth.values(), reverse=True)[:6]
        assert [r.score for r in results] == expected
        for item in results:
            assert truth[item.object_id] == item.score

    def test_progressive_yields_descending_scores(self, engine):
        results = list(SBA(engine.make_context()).run([0, 50], 8))
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_no_duplicate_results(self, engine):
        results = list(SBA(engine.make_context()).run([1, 2, 3], 10))
        ids = [r.object_id for r in results]
        assert len(set(ids)) == len(ids)

    def test_k_greater_than_n(self):
        engine = make_engine(n=15, seed=22)
        results = list(SBA(engine.make_context()).run([0, 7], 50))
        assert len(results) == 15


class TestProgressiveness:
    def test_first_result_costs_less_than_full_run(self, engine):
        queries = [5, 55, 105]
        metric = engine.space.metric

        ctx = engine.make_context()
        gen = SBA(ctx).run(queries, 10)
        before = metric.snapshot()
        next(gen)
        partial = metric.delta_since(before)
        list(gen)
        total = metric.delta_since(before)
        assert partial <= total
        # partial consumption reports fewer exact computations as well.
        ctx2 = engine.make_context()
        gen2 = SBA(ctx2).run(queries, 10)
        next(gen2)
        gen2.close()
        assert ctx2.stats.exact_score_computations < (
            ctx.stats.exact_score_computations
        )

    def test_each_round_recomputes_skyline(self, engine):
        """SBA's known weakness: exact score computations scale with
        |skyline| * k, far above PBA's handful (paper Section 4.2)."""
        ctx = engine.make_context()
        list(SBA(ctx).run([0, 40, 80], 5))
        assert ctx.stats.exact_score_computations >= 5


class TestPhysicalRemoval:
    def test_physical_removal_same_answer(self, engine):
        queries = [10, 70]
        skip_based = list(SBA(engine.make_context()).run(queries, 5))
        physical = list(
            SBA(engine.make_context(), remove_physically=True).run(
                queries, 5
            )
        )
        assert [r.score for r in skip_based] == [r.score for r in physical]

    def test_tree_restored_after_physical_removal(self, engine):
        before = len(engine.tree)
        list(
            SBA(engine.make_context(), remove_physically=True).run(
                [0, 50], 5
            )
        )
        assert len(engine.tree) == before
        engine.tree.check_invariants()
