"""Acceptance tests for seeded chaos: reproducibility and neutrality.

The ISSUE-level guarantees of the fault framework:

* **determinism** — a fixed ``ChaosConfig(seed=...)`` makes two runs of
  the same workload produce byte-identical fault sequences, retry
  counts and results;
* **neutrality** — with every probability at zero, attaching the
  injector changes nothing: same results, same distance computations,
  same page-fault counts as an injector-free engine, for every
  algorithm.
"""

import pytest

from repro.faults.chaos import PROFILES, ChaosConfig, FaultInjector, FaultRecord
from repro.faults.errors import FaultError

from tests.conftest import make_engine

QUERIES = [0, 40, 80]
K = 5


class TestChaosConfig:
    @pytest.mark.parametrize(
        "field",
        [
            "read_transient_p",
            "read_permanent_p",
            "corrupt_p",
            "storage_latency_p",
            "rpc_timeout_p",
            "rpc_fail_p",
            "rpc_latency_p",
        ],
    )
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            ChaosConfig(**{field: -0.1})

    def test_default_config_is_all_zero(self):
        config = ChaosConfig()
        assert config.read_transient_p == 0.0
        assert config.rpc_timeout_p == 0.0

    def test_retry_policy_reflects_tunables(self):
        config = ChaosConfig(retry_max_attempts=7, retry_base_delay=0.5)
        policy = config.retry_policy
        assert policy.max_attempts == 7
        assert policy.base_delay == 0.5

    def test_profiles_all_construct(self):
        for name in PROFILES:
            config = ChaosConfig.profile(name, seed=3)
            assert config.seed == 3

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            ChaosConfig.profile("nope")

    def test_fault_record_tuple(self):
        record = FaultRecord("storage", "retry", "disk:3")
        assert record.as_tuple() == ("storage", "retry", "disk:3")


def run_chaotic_engine(seed, chaos_seed, algorithm="pba2"):
    """One engine + injector run; returns (outcome, injector).

    The buffers are cleared first so the query performs physical reads
    (otherwise the build leaves everything resident and the storage
    fault path is never exercised).  Queries that die of an exhausted
    retry budget are part of the reproducible outcome.
    """
    engine = make_engine(n=120, dims=3, seed=seed)
    injector = FaultInjector(
        ChaosConfig(seed=chaos_seed, read_transient_p=0.2),
        sleep=lambda _s: None,
    )
    engine.attach_fault_injector(injector)
    engine.buffers.clear()
    try:
        results, stats = engine.top_k_dominating(QUERIES, K, algorithm)
        outcome = [(r.object_id, r.score) for r in results]
    except FaultError as exc:
        outcome = ("fault", type(exc).__name__, str(exc))
    return outcome, injector


class TestDeterminism:
    def test_same_seed_same_faults_same_results(self):
        outcome_a, injector_a = run_chaotic_engine(seed=11, chaos_seed=5)
        outcome_b, injector_b = run_chaotic_engine(seed=11, chaos_seed=5)
        assert injector_a.fault_log() == injector_b.fault_log()
        assert injector_a.counters() == injector_b.counters()
        assert outcome_a == outcome_b
        # the run actually injected something, or the test is vacuous.
        assert injector_a.counters().get("storage.read_transient", 0) > 0

    def test_different_chaos_seed_different_fault_sequence(self):
        _outcome_a, injector_a = run_chaotic_engine(seed=11, chaos_seed=5)
        _outcome_b, injector_b = run_chaotic_engine(seed=11, chaos_seed=6)
        assert injector_a.fault_log() != injector_b.fault_log()

    def test_snapshot_shape(self):
        _outcome, injector = run_chaotic_engine(seed=11, chaos_seed=5)
        snap = injector.snapshot()
        assert snap["seed"] == 5
        assert snap["events"] == len(injector.fault_log())
        assert snap["counters"] == injector.counters()


class TestZeroProbabilityNeutrality:
    @pytest.mark.parametrize(
        "algorithm", ["brute", "sba", "aba", "pba1", "pba2"]
    )
    def test_results_and_costs_unchanged(self, algorithm):
        plain = make_engine(n=120, dims=3, seed=21)
        chaotic = make_engine(n=120, dims=3, seed=21)
        injector = FaultInjector(ChaosConfig(seed=99))
        chaotic.attach_fault_injector(injector)

        plain_results, plain_stats = plain.top_k_dominating(
            QUERIES, K, algorithm
        )
        chaos_results, chaos_stats = chaotic.top_k_dominating(
            QUERIES, K, algorithm
        )
        assert [(r.object_id, r.score) for r in plain_results] == [
            (r.object_id, r.score) for r in chaos_results
        ]
        assert (
            plain_stats.distance_computations
            == chaos_stats.distance_computations
        )
        assert plain_stats.io.page_faults == chaos_stats.io.page_faults
        assert plain_stats.io.logical_reads == chaos_stats.io.logical_reads
        assert injector.fault_log() == ()

    def test_zero_probability_draws_consume_rng_but_fire_nothing(self):
        # the injector draws on every read regardless of outcome, so
        # raising one probability later never shifts the other streams.
        engine = make_engine(n=80, dims=3, seed=22)
        injector = FaultInjector(ChaosConfig(seed=1))
        engine.attach_fault_injector(injector)
        engine.buffers.clear()
        engine.top_k_dominating(QUERIES[:2], 3, "pba2")
        assert injector.fault_log() == ()
        assert injector.counters() == {}
