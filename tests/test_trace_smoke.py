"""End-to-end smoke test of the ``repro-trace`` CLI (run in CI).

Records a tiny traced workload, then drives every subcommand over the
resulting file and checks the Chrome export against the trace-event
schema.  Mirrors the "Trace smoke" CI step so failures reproduce
locally with plain pytest.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import (
    NATIVE_FORMAT,
    TRACE_EVENT_SCHEMA,
    load_trace,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("trace-smoke")
    out = str(tmp_path / "smoke.trace.json")
    chrome = str(tmp_path / "smoke.chrome.json")
    code = main(
        [
            "record",
            "--out", out,
            "--chrome", chrome,
            "--n", "120",
            "--requests", "8",
            "--clients", "2",
            "--workers", "2",
            "--no-io-model",
            "--seed", "3",
        ]
    )
    assert code == 0
    return tmp_path, out, chrome


def test_record_writes_native_trace(recorded):
    _tmp, out, _chrome = recorded
    document = load_trace(out)
    assert document["format"] == NATIVE_FORMAT
    assert document["meta"]["workload"]["n"] == 120
    assert document["meta"]["completed"] == 8
    names = {span["name"] for span in document["spans"]}
    assert "service.request" in names
    assert "engine.query" in names


def test_record_chrome_export_validates(recorded):
    _tmp, _out, chrome = recorded
    with open(chrome, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_chrome_trace(document)
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(document, TRACE_EVENT_SCHEMA)
    assert any(e["ph"] == "X" for e in document["traceEvents"])


def test_summarize_shows_cost_axes(recorded, capsys):
    _tmp, out, _chrome = recorded
    assert main(["summarize", out]) == 0
    text = capsys.readouterr().out
    assert "cpu%" in text and "io%" in text and "dist%" in text
    assert "engine.query" in text


def test_top_ranks_traces(recorded, capsys):
    _tmp, out, _chrome = recorded
    assert main(["top", out, "--axis", "io", "-n", "3"]) == 0
    text = capsys.readouterr().out
    assert "top" in text and "io" in text


def test_export_roundtrip(recorded, tmp_path, capsys):
    _tmp, out, _chrome = recorded
    target = str(tmp_path / "exported.chrome.json")
    assert main(["export", out, "--chrome", target]) == 0
    with open(target, "r", encoding="utf-8") as handle:
        validate_chrome_trace(json.load(handle))


def test_bad_trace_file_is_a_clean_cli_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "other/1", "spans": []}')
    assert main(["summarize", str(bad)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro-trace: error:")
    assert "not a repro-trace/1 trace file" in err
