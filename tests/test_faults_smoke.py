"""Tier-1 chaos smoke: the seeded "low" profile changes no answer.

The ``low`` profile injects rare transient faults (1 % per physical
page read, 1 % per site call).  Every one of them must be absorbed by
retries: the engine and the distributed coordinator return exactly the
fault-free answers, just having taken a few retries to get there.  This
is the cheap always-on canary for the whole recovery path; the heavier
deterministic scenarios live in test_faults_* / test_distributed_faults.
"""

import random

from repro.core.brute_force import brute_force_scores
from repro.distributed import DistributedTopK
from repro.faults.chaos import ChaosConfig, FaultInjector

from tests.conftest import make_engine, make_vector_space

SEED = 7


def test_engine_low_profile_matches_fault_free_run():
    queries, k = [0, 40, 80], 5
    plain = make_engine(n=120, dims=3, seed=SEED)
    chaotic = make_engine(n=120, dims=3, seed=SEED)
    injector = FaultInjector(
        ChaosConfig.profile("low", seed=SEED), sleep=lambda _s: None
    )
    chaotic.attach_fault_injector(injector)
    # cold buffers on both sides so the chaotic run meets the disk.
    plain.buffers.clear()
    chaotic.buffers.clear()

    for algorithm in ("sba", "pba2"):
        expected, expected_stats = plain.top_k_dominating(
            queries, k, algorithm
        )
        observed, observed_stats = chaotic.top_k_dominating(
            queries, k, algorithm
        )
        assert [(r.object_id, r.score) for r in observed] == [
            (r.object_id, r.score) for r in expected
        ]
        assert (
            observed_stats.distance_computations
            == expected_stats.distance_computations
        )
    # the canary must actually have seen faults to mean anything.
    assert injector.counters().get("storage.read_transient", 0) > 0
    assert injector.counters()["storage.retry"] == injector.counters()[
        "storage.read_transient"
    ]


def test_distributed_low_profile_stays_exact():
    space = make_vector_space(n=90, dims=3, seed=SEED)
    injector = FaultInjector(
        ChaosConfig.profile("low", seed=SEED), sleep=lambda _s: None
    )
    system = DistributedTopK(
        space, num_sites=3, rng=random.Random(SEED), chaos=injector
    )
    queries, k = [0, 30, 60], 6
    results, stats = system.top_k(queries, k)
    assert stats.coverage.exact
    truth = brute_force_scores(space, queries)
    assert [r.score for r in results] == sorted(
        truth.values(), reverse=True
    )[:k]
    for item in results:
        assert truth[item.object_id] == item.score
