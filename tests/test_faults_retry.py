"""Unit tests for the retry policy and retry loop."""

import random

import pytest

from repro.faults.errors import TransientPageError, StorageCorruption
from repro.faults.retry import RetryPolicy, call_with_retry, default_retryable
from repro.storage.pages import PageError


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.base_delay <= policy.max_delay

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.001, max_delay=10.0, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff(a, rng) for a in range(4)]
        assert delays == [0.001, 0.002, 0.004, 0.008]

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=0.001, max_delay=0.004, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.backoff(10, rng) == 0.004

    def test_jitter_never_exceeds_cap_and_never_negative(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.05, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(20):
            delay = policy.backoff(attempt % 6, rng)
            assert 0.0 <= delay <= policy.max_delay

    def test_jitter_is_deterministic_given_seeded_rng(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, random.Random(42)) for i in range(5)]
        b = [policy.backoff(i, random.Random(42)) for i in range(5)]
        assert a == b

    def test_jitter_varies_with_rng_stream(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=10.0, jitter=0.5)
        rng = random.Random(3)
        delays = {policy.backoff(0, rng) for _ in range(10)}
        assert len(delays) > 1

    def test_negative_max_total_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_total_delay=-0.001)


class TestWorstCaseTotal:
    def test_default_policy_bound_is_pinned(self):
        # REGRESSION PIN: the default policy (4 attempts, 1ms base,
        # 2x multiplier) can sleep at most 1+2+4 ms in total.  Every
        # retry loop in the storage and RPC layers inherits this
        # bound; changing it is a latency-contract change and must be
        # deliberate.
        assert RetryPolicy().worst_case_total() == pytest.approx(0.007)

    def test_bound_is_jitter_free_sum_of_backoffs(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.001, max_delay=0.004,
            multiplier=2.0, jitter=0.5,
        )
        # 1 + 2 + 4 + 4(capped) ms — jitter only shrinks delays.
        assert policy.worst_case_total() == pytest.approx(0.011)

    def test_explicit_max_total_delay_clips_the_curve(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.010, max_delay=1.0,
            jitter=0.0, max_total_delay=0.015,
        )
        assert policy.worst_case_total() == pytest.approx(0.015)

    def test_single_attempt_policy_never_sleeps(self):
        assert RetryPolicy(max_attempts=1).worst_case_total() == 0.0


class TestDefaultRetryable:
    def test_transient_fault_is_retryable(self):
        assert default_retryable(TransientPageError("disk", 1))

    def test_corruption_is_not_retryable(self):
        assert not default_retryable(StorageCorruption("disk", 1))

    def test_page_error_is_never_retryable(self):
        # API misuse must surface immediately, not burn retry budget.
        assert not default_retryable(PageError("double free of page 3"))

    def test_arbitrary_exception_is_not_retryable(self):
        assert not default_retryable(RuntimeError("boom"))


class TestCallWithRetry:
    def _policy(self, attempts=4):
        return RetryPolicy(max_attempts=attempts, jitter=0.0)

    def test_success_first_try_no_sleep(self):
        sleeps = []
        result = call_with_retry(
            lambda: 42,
            policy=self._policy(),
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        assert result == 42
        assert sleeps == []

    def test_transient_fault_retried_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientPageError("disk", 9)
            return "ok"

        sleeps = []
        result = call_with_retry(
            flaky,
            policy=self._policy(),
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_budget_exhaustion_raises_last_fault(self):
        def always_fails():
            raise TransientPageError("disk", 5)

        with pytest.raises(TransientPageError):
            call_with_retry(
                always_fails,
                policy=self._policy(attempts=3),
                rng=random.Random(0),
                sleep=lambda _s: None,
            )

    def test_attempt_budget_is_total_attempts(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise TransientPageError("disk", 5)

        with pytest.raises(TransientPageError):
            call_with_retry(
                always_fails,
                policy=self._policy(attempts=3),
                rng=random.Random(0),
                sleep=lambda _s: None,
            )
        assert calls["n"] == 3

    def test_non_retryable_fault_raises_immediately(self):
        calls = {"n": 0}

        def corrupt():
            calls["n"] += 1
            raise StorageCorruption("disk", 2)

        with pytest.raises(StorageCorruption):
            call_with_retry(
                corrupt,
                policy=self._policy(),
                rng=random.Random(0),
                sleep=lambda _s: None,
            )
        assert calls["n"] == 1

    def test_on_retry_hook_sees_fault_attempt_and_delay(self):
        seen = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientPageError("disk", 1)
            return None

        call_with_retry(
            flaky,
            policy=self._policy(),
            rng=random.Random(0),
            sleep=lambda _s: None,
            on_retry=lambda exc, attempt, delay: seen.append(
                (type(exc).__name__, attempt, delay)
            ),
        )
        assert [s[0] for s in seen] == ["TransientPageError"] * 2
        assert [s[1] for s in seen] == [0, 1]
        assert all(s[2] >= 0 for s in seen)

    def test_cumulative_sleep_never_exceeds_worst_case_total(self):
        # a retry storm must not stall its caller beyond the policy's
        # advertised bound, whatever the attempt count or multiplier.
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=0.010,
            max_delay=10.0,
            multiplier=3.0,
            jitter=0.0,
            max_total_delay=0.025,
        )
        sleeps = []

        def always_fails():
            raise TransientPageError("disk", 5)

        with pytest.raises(TransientPageError):
            call_with_retry(
                always_fails,
                policy=policy,
                rng=random.Random(0),
                sleep=sleeps.append,
            )
        assert sum(sleeps) <= policy.worst_case_total() + 1e-12
        assert sum(sleeps) <= 0.025 + 1e-12
        # the budget clips, it does not cancel: early sleeps run whole.
        assert sleeps[0] == pytest.approx(0.010)

    def test_custom_retryable_predicate(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise KeyError("transient-looking")
            return "ok"

        result = call_with_retry(
            flaky,
            policy=self._policy(),
            rng=random.Random(0),
            sleep=lambda _s: None,
            retryable=lambda exc: isinstance(exc, KeyError),
        )
        assert result == "ok"
