"""Unit tests of the service metrics layer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.storage.stats import QueryStats


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_mean_min_max_are_exact(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.003)

    def test_quantiles_are_bucket_accurate(self):
        histogram = LatencyHistogram()
        # 90 fast requests, 10 slow ones: p50 must look fast, p99 slow
        for _ in range(90):
            histogram.record(0.001)
        for _ in range(10):
            histogram.record(1.0)
        p50 = histogram.quantile(0.50)
        p99 = histogram.quantile(0.99)
        assert p50 < 0.01
        assert p99 > 0.25
        # estimates never leave the observed range
        assert histogram.min <= p50 <= histogram.max
        assert histogram.min <= p99 <= histogram.max

    def test_quantile_validation(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_out_of_range_observation_lands_in_overflow(self):
        histogram = LatencyHistogram()
        histogram.record(10_000.0)  # beyond the last bound
        assert histogram.count == 1
        assert histogram.quantile(1.0) == pytest.approx(10_000.0)

    def test_thread_safety_no_lost_updates(self):
        histogram = LatencyHistogram()

        def hammer():
            for _ in range(1000):
                histogram.record(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 4000

    def test_nan_is_dropped_and_counted(self):
        histogram = LatencyHistogram()
        histogram.record(float("nan"))
        assert histogram.count == 0
        assert histogram.dropped == 1
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        # totals stay un-poisoned: later observations remain exact
        histogram.record(0.002)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.snapshot()["dropped"] == 1

    def test_negative_duration_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-0.5)
        assert histogram.count == 1
        assert histogram.dropped == 0
        assert histogram.min == 0.0
        assert histogram.total == 0.0
        assert histogram.quantile(1.0) == 0.0

    def test_quantile_exact_at_bucket_boundary(self):
        # rank = 0.9 * 10 is 9.000000000000002 in floats; without the
        # integer snap the estimate jumps into the slow bucket.
        histogram = LatencyHistogram()
        for _ in range(9):
            histogram.record(0.0001)
        histogram.record(1.0)
        assert histogram.quantile(0.90) == pytest.approx(0.0001)

    def test_quantile_boundary_returns_upper_exactly(self):
        # fraction == 1.0 must return the bucket's upper bound itself,
        # not lower + (upper - lower) * 1.0, which can round past it.
        histogram = LatencyHistogram()
        for _ in range(5):
            histogram.record(50e-6)
        for _ in range(5):
            histogram.record(1.0)
        assert histogram.quantile(0.50) == 50e-6

    def test_snapshot_shape(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        snap = histogram.snapshot()
        assert set(snap) == {
            "count",
            "dropped",
            "mean_seconds",
            "p50_seconds",
            "p90_seconds",
            "p99_seconds",
            "min_seconds",
            "max_seconds",
        }
        assert snap["count"] == 1


class TestServiceMetrics:
    def test_response_accounting(self):
        metrics = ServiceMetrics()
        metrics.observe_request()
        metrics.observe_response(0.01, cached=False, coalesced=False)
        metrics.observe_request()
        metrics.observe_response(0.001, cached=True, coalesced=False)
        metrics.observe_request()
        metrics.observe_response(0.002, cached=False, coalesced=True)
        snap = metrics.snapshot()
        assert snap["requests"]["received"] == 3
        assert snap["requests"]["completed"] == 3
        assert snap["requests"]["cache_hits"] == 1
        assert snap["requests"]["coalesced"] == 1
        assert snap["latency"]["all"]["count"] == 3
        assert snap["latency"]["cache_hit"]["count"] == 1
        # coalesced responses are not cold executions
        assert snap["latency"]["cold"]["count"] == 1

    def test_per_algorithm_aggregation(self):
        metrics = ServiceMetrics()
        stats = QueryStats()
        stats.distance_computations = 100
        stats.io.page_faults = 7
        metrics.observe_execution("pba2", stats)
        metrics.observe_execution("pba2", stats)
        metrics.observe_execution("sba", stats)
        snap = metrics.snapshot()
        assert snap["per_algorithm"]["pba2"]["executions"] == 2
        assert snap["per_algorithm"]["pba2"]["distance_computations"] == 200
        assert snap["per_algorithm"]["pba2"]["page_faults"] == 14
        assert snap["per_algorithm"]["sba"]["executions"] == 1

    def test_rejections_and_failures(self):
        metrics = ServiceMetrics()
        metrics.observe_rejection(overloaded=True)
        metrics.observe_rejection(overloaded=False)
        metrics.observe_failure()
        metrics.observe_write(0.01)
        snap = metrics.snapshot()
        assert snap["requests"]["rejected_overloaded"] == 1
        assert snap["requests"]["rejected_deadline"] == 1
        assert snap["requests"]["failures"] == 1
        assert snap["requests"]["writes"] == 1
        assert snap["latency"]["write"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        metrics = ServiceMetrics()
        metrics.observe_execution("pba2", QueryStats())
        assert json.loads(json.dumps(metrics.snapshot()))
