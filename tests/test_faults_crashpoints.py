"""Unit tests for the named crash-point registry and plans."""

from __future__ import annotations

import pytest

from repro.faults.crashpoints import (
    CRASH_POINTS,
    CrashPlan,
    SimulatedCrash,
    active_plan,
    clear_plan,
    crashpoint,
    crashpoint_due,
    install_plan,
    sample_crash_points,
)

SITE = "engine.insert.pre_commit"
OTHER = "engine.delete.pre_commit"


@pytest.fixture(autouse=True)
def _disarm():
    clear_plan()
    yield
    clear_plan()


class TestCrashPlan:
    def test_unknown_site_rejected_with_catalog(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            CrashPlan(site="engine.insert.no_such_site")

    def test_hit_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashPlan(site=SITE, hit=0)

    def test_mode_must_be_kill_or_raise(self):
        with pytest.raises(ValueError):
            CrashPlan(site=SITE, mode="explode")

    def test_registry_is_nonempty_and_namespaced(self):
        assert len(CRASH_POINTS) >= 10
        assert len(set(CRASH_POINTS)) == len(CRASH_POINTS)
        for site in CRASH_POINTS:
            layer = site.split(".")[0]
            assert layer in {
                "storage", "wal", "engine", "streaming", "checkpoint"
            }


class TestArming:
    def test_no_plan_means_no_op(self):
        crashpoint(SITE)  # must not raise

    def test_raise_mode_fires_at_the_armed_site(self):
        install_plan(CrashPlan(site=SITE, mode="raise"))
        with pytest.raises(SimulatedCrash) as excinfo:
            crashpoint(SITE)
        assert excinfo.value.site == SITE

    def test_other_sites_do_not_fire_or_advance_the_count(self):
        install_plan(CrashPlan(site=SITE, hit=1, mode="raise"))
        crashpoint(OTHER)
        assert active_plan().count == 0

    def test_hit_count_selects_the_nth_arrival(self):
        install_plan(CrashPlan(site=SITE, hit=3, mode="raise"))
        crashpoint(SITE)
        crashpoint(SITE)
        with pytest.raises(SimulatedCrash):
            crashpoint(SITE)

    def test_install_resets_the_arrival_count(self):
        plan = CrashPlan(site=SITE, hit=2, mode="raise")
        install_plan(plan)
        crashpoint(SITE)
        install_plan(plan)
        crashpoint(SITE)  # count restarted: 1 < 2, no crash
        assert active_plan().count == 1

    def test_clear_plan_disarms(self):
        install_plan(CrashPlan(site=SITE, mode="raise"))
        clear_plan()
        crashpoint(SITE)
        assert active_plan() is None

    def test_crashpoint_due_decides_without_firing(self):
        install_plan(CrashPlan(site=SITE, hit=2, mode="raise"))
        assert crashpoint_due(SITE) is False
        assert crashpoint_due(SITE) is True  # due, but nothing raised
        assert crashpoint_due(OTHER) is False

    def test_simulated_crash_evades_except_exception(self):
        # the whole point of BaseException: a write path's cleanup
        # handler must not be able to absorb a "crash".
        install_plan(CrashPlan(site=SITE, mode="raise"))
        with pytest.raises(SimulatedCrash):
            try:
                crashpoint(SITE)
            except Exception:  # noqa: BLE001 - the pattern under test
                pytest.fail("SimulatedCrash was swallowed")


class TestSampling:
    def test_sample_is_deterministic_per_seed(self):
        assert sample_crash_points(3, 4) == sample_crash_points(3, 4)
        assert sample_crash_points(3, 4) != sample_crash_points(4, 4)

    def test_sample_draws_registered_sites_without_repeats(self):
        sample = sample_crash_points(0, 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5
        assert set(sample) <= set(CRASH_POINTS)

    def test_oversized_sample_returns_the_whole_catalog(self):
        assert sample_crash_points(0, 10_000) == list(CRASH_POINTS)
