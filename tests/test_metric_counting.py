"""Unit tests for the distance-computation counter."""

import numpy as np
import pytest

from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric


@pytest.fixture
def metric():
    return CountingMetric(EuclideanMetric())


class TestCounting:
    def test_counts_each_call(self, metric):
        a, b = np.array([0.0, 0.0]), np.array([1.0, 0.0])
        metric(a, b)
        metric(a, b)
        assert metric.count == 2

    def test_identity_shortcircuit_not_counted(self, metric):
        a = np.array([1.0, 2.0])
        assert metric(a, a) == 0.0
        assert metric.count == 0

    def test_equal_but_distinct_payloads_counted(self, metric):
        a, b = np.array([1.0]), np.array([1.0])
        assert metric(a, b) == 0.0
        assert metric.count == 1

    def test_returns_inner_value(self, metric):
        assert metric(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == (
            pytest.approx(5.0)
        )

    def test_reset(self, metric):
        metric(np.array([0.0]), np.array([1.0]))
        metric.reset()
        assert metric.count == 0

    def test_snapshot_delta(self, metric):
        a, b = np.array([0.0]), np.array([1.0])
        metric(a, b)
        snap = metric.snapshot()
        metric(a, b)
        metric(a, b)
        assert metric.delta_since(snap) == 2

    def test_inherits_name(self, metric):
        assert metric.name == "euclidean"
