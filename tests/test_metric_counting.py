"""Unit tests for the distance-computation counter."""

import numpy as np
import pytest

from repro.metric.counting import CountingMetric
from repro.metric.vector import EuclideanMetric


@pytest.fixture
def metric():
    return CountingMetric(EuclideanMetric())


class TestCounting:
    def test_counts_each_call(self, metric):
        a, b = np.array([0.0, 0.0]), np.array([1.0, 0.0])
        metric(a, b)
        metric(a, b)
        assert metric.count == 2

    def test_identity_shortcircuit_not_counted(self, metric):
        a = np.array([1.0, 2.0])
        assert metric(a, a) == 0.0
        assert metric.count == 0

    def test_equal_but_distinct_payloads_counted(self, metric):
        a, b = np.array([1.0]), np.array([1.0])
        assert metric(a, b) == 0.0
        assert metric.count == 1

    def test_returns_inner_value(self, metric):
        assert metric(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == (
            pytest.approx(5.0)
        )

    def test_reset(self, metric):
        metric(np.array([0.0]), np.array([1.0]))
        metric.reset()
        assert metric.count == 0

    def test_snapshot_delta(self, metric):
        a, b = np.array([0.0]), np.array([1.0])
        metric(a, b)
        snap = metric.snapshot()
        metric(a, b)
        metric(a, b)
        assert metric.delta_since(snap) == 2

    def test_inherits_name(self, metric):
        assert metric.name == "euclidean"


class TestThreadLocalAttribution:
    def test_local_count_tracks_global_single_threaded(self, metric):
        a, b = np.array([0.0]), np.array([1.0])
        metric(a, b)
        assert metric.local_count() == metric.count == 1
        metric.make_thread_safe()
        before = metric.local_count()
        metric(a, b)
        assert metric.local_count() - before == 1

    def test_local_counts_partition_global_across_threads(self, metric):
        import threading

        metric.make_thread_safe()
        a, b = np.array([0.0]), np.array([1.0])
        per_thread = {}

        def worker(tag, evaluations):
            before = metric.local_count()
            for _ in range(evaluations):
                metric(a, b)
            per_thread[tag] = metric.local_count() - before

        threads = [
            threading.Thread(target=worker, args=(tag, n))
            for tag, n in (("x", 7), ("y", 13))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # each thread saw exactly its own evaluations, and the shared
        # counter remained exact in aggregate.
        assert per_thread == {"x": 7, "y": 13}
        assert metric.count == 20
