"""Property: dynamic updates racing cached queries never serve stale
scores.

This is the cache-epoch invalidation correctness argument of
``docs/serving.md``, executed: arbitrary interleavings of
``insert_object`` / ``delete_object`` and *cached* ``top_k_dominating``
calls through :class:`~repro.service.QueryService`, where every served
answer — cache hit or cold — is audited against a freshly computed
brute-force score over the live data set.  A single missed
invalidation (flush not firing, epoch not bumped, stamp mismatched)
surfaces as :class:`StaleResultError`.

The interleavings are driven synchronously (``query_sync``) so the
ground truth is exact at every step; the concurrent execution path
over the same cache/epoch machinery is exercised by
``tests/test_service_server.py`` and the serving benchmark.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.service import QueryService, ServiceConfig
from tests.conftest import make_engine


@st.composite
def interleavings(draw):
    """A schedule of inserts, deletes and queries plus a query pool."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    pool_count = draw(st.integers(min_value=2, max_value=4))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 1_000)),
                st.tuples(st.just("delete"), st.integers(0, 1_000)),
                st.tuples(
                    st.just("query"),
                    st.integers(0, pool_count - 1),
                ),
            ),
            min_size=4,
            max_size=14,
        )
    )
    return seed, pool_count, ops


@settings(max_examples=20, deadline=None)
@given(schedule=interleavings())
def test_interleaved_updates_never_serve_stale_scores(schedule):
    seed, pool_count, ops = schedule
    n = 36
    engine = make_engine(n=n, dims=2, seed=seed, grid=4)
    rng = random.Random(seed)
    pool = [tuple(sorted(rng.sample(range(n), 3))) for _ in range(pool_count)]
    k = 4
    deletable = list(range(n))
    served_epoch = {}

    with QueryService(
        engine, ServiceConfig(workers=1, cache_capacity=16)
    ) as service:
        for op in ops:
            if op[0] == "insert":
                point = np.asarray(
                    [rng.random(), rng.random()], dtype=float
                )
                deletable.append(service.insert_sync(point))
            elif op[0] == "delete":
                if not deletable:
                    continue
                victim = deletable.pop(op[1] % len(deletable))
                service.delete_sync(victim)
            else:
                query_ids = pool[op[1]]
                response = service.query_sync(list(query_ids), k)
                # the audit: every served score must equal a freshly
                # computed brute-force score over the live tree.
                # verify_response raises StaleResultError on mismatch.
                assert (
                    service.verify_response(list(query_ids), k, response)
                    is True
                )
                # bookkeeping assertion: between writes, the repeat of
                # a pooled query MUST be served from cache (the cache
                # is large enough that nothing is evicted by size).
                key = (query_ids, k, "pba2")
                if served_epoch.get(key) == engine.epoch:
                    assert response.cached, (
                        "expected a cache hit for a repeated query "
                        "with no intervening write"
                    )
                else:
                    assert not response.cached
                served_epoch[key] = engine.epoch
