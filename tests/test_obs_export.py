"""Tests for trace persistence and Chrome trace-event export."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.export import (
    NATIVE_FORMAT,
    TRACE_EVENT_SCHEMA,
    load_trace,
    spans_to_chrome,
    trace_document,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace,
)
from repro.obs.trace import Tracer

jsonschema = pytest.importorskip("jsonschema")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


@pytest.fixture
def recorded_tracer() -> Tracer:
    tracer = Tracer(clock=FakeClock())
    with tracer.trace("service.request", args={"k": 5}):
        with trace.span("engine.query", category="engine"):
            trace.event("fault.storage.transient", category="fault")
    return tracer


class TestNativeFormat:
    def test_document_shape(self, recorded_tracer):
        document = trace_document(recorded_tracer, meta={"seed": 7})
        assert document["format"] == NATIVE_FORMAT
        assert document["meta"] == {"seed": 7}
        assert document["dropped"] == 0
        assert len(document["spans"]) == 3

    def test_roundtrip(self, recorded_tracer, tmp_path):
        path = str(tmp_path / "t.trace.json")
        written = write_trace(path, recorded_tracer, meta={"a": 1})
        loaded = load_trace(path)
        assert loaded == json.loads(json.dumps(written))

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other/9", "spans": []}')
        with pytest.raises(ValueError, match="repro-trace/1"):
            load_trace(str(path))

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestChromeConversion:
    def test_events_validate_against_schema(self, recorded_tracer):
        document = spans_to_chrome(recorded_tracer.export())
        jsonschema.validate(document, TRACE_EVENT_SCHEMA)
        validate_chrome_trace(document)

    def test_timestamps_rebased_and_micros(self, recorded_tracer):
        document = spans_to_chrome(recorded_tracer.export())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in events) == 0.0
        # fake clock steps 0.5 s; the root spans 0.5..2.5 -> 2.0e6 us
        root = next(e for e in events if e["name"] == "service.request")
        assert root["dur"] == pytest.approx(2.0e6)

    def test_metadata_events(self, recorded_tracer):
        document = spans_to_chrome(recorded_tracer.export())
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names

    def test_deterministic_small_tids(self, recorded_tracer):
        document = spans_to_chrome(recorded_tracer.export())
        tids = {
            e["tid"] for e in document["traceEvents"] if e["ph"] != "M"
        }
        assert tids == {1}  # single-threaded recording -> first tid

    def test_costs_and_trace_id_in_args(self):
        tracer = Tracer(clock=FakeClock())
        probe_values = iter(
            [
                trace.CostSnapshot(page_faults=0),
                trace.CostSnapshot(page_faults=4),
            ]
        )
        with tracer.trace("root", probe=lambda: next(probe_values)):
            pass
        document = spans_to_chrome(tracer.export())
        root = next(
            e for e in document["traceEvents"] if e["name"] == "root"
        )
        assert root["args"]["page_faults"] == 4
        assert root["args"]["trace_id"] == 1

    def test_instant_events_have_scope(self, recorded_tracer):
        document = spans_to_chrome(recorded_tracer.export())
        instant = next(
            e for e in document["traceEvents"] if e["ph"] == "i"
        )
        assert instant["s"] == "t"
        jsonschema.validate(document, TRACE_EVENT_SCHEMA)

    def test_write_chrome_trace_validates_and_writes(
        self, recorded_tracer, tmp_path
    ):
        path = str(tmp_path / "t.chrome.json")
        document = write_chrome_trace(path, recorded_tracer.export())
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == json.loads(json.dumps(document))


class TestValidator:
    """The pure-python validator must agree with the JSON schema."""

    def _one_event(self, **overrides):
        event = {"name": "e", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": 1.0}
        event.update(overrides)
        return {"traceEvents": [event]}

    def test_accepts_valid(self):
        validate_chrome_trace(self._one_event())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"ph": "Z"},
            {"ts": -1.0},
            {"dur": None},
            {"tid": "one"},
            {"args": [1]},
            {"ph": "i", "s": None},
        ],
    )
    def test_rejects_invalid(self, overrides):
        document = self._one_event(**overrides)
        with pytest.raises(ValueError, match=r"traceEvents\[0\]"):
            validate_chrome_trace(document)
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(document, TRACE_EVENT_SCHEMA)

    def test_rejects_non_object_document(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([1])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
