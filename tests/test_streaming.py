"""Sliding-window continuous top-k dominating queries."""

import numpy as np
import pytest

from repro.core.brute_force import brute_force_scores
from repro.streaming import SlidingWindowTopK, WindowEvent

from tests.conftest import make_engine


def make_window(n=40, window_size=40, seed=121):
    engine = make_engine(n=n, seed=seed)
    return engine, SlidingWindowTopK(engine, window_size=window_size)


class TestMaintenance:
    def test_append_without_expiry(self):
        engine, window = make_window(n=10, window_size=20)
        event = window.append(np.array([0.5, 0.5, 0.5]))
        assert event.arrived == 10
        assert event.expired is None
        assert len(window) == 11

    def test_append_with_expiry(self):
        engine, window = make_window(n=20, window_size=20)
        event = window.append(np.array([0.1, 0.2, 0.3]))
        assert event.expired == 0  # oldest id expires
        assert 0 not in engine.tree
        assert len(window) == 20

    def test_fifo_expiry_order(self):
        engine, window = make_window(n=5, window_size=5)
        rng = np.random.default_rng(1)
        expired = [window.append(rng.random(3)).expired for _ in range(3)]
        assert expired == [0, 1, 2]

    def test_window_size_validation(self):
        engine, _ = make_window(n=5, window_size=5)
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, window_size=0)
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, window_size=3)  # engine too full


class TestQuerying:
    def test_results_match_oracle_on_window(self):
        engine, window = make_window(n=30, window_size=30, seed=122)
        rng = np.random.default_rng(2)
        for _ in range(10):
            window.append(rng.random(3))
        queries = window.live_ids[:2]
        results, _ = window.top_k(queries, 5)
        truth = brute_force_scores(
            engine.space, queries, universe=window.live_ids
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]

    def test_expired_objects_never_reported(self):
        engine, window = make_window(n=20, window_size=20, seed=123)
        rng = np.random.default_rng(3)
        expired = set()
        for _ in range(8):
            event = window.append(rng.random(3))
            expired.add(event.expired)
        queries = window.live_ids[-2:]
        results, _ = window.top_k(queries, 10)
        assert not ({r.object_id for r in results} & expired)

    def test_expired_query_object_rejected(self):
        engine, window = make_window(n=10, window_size=10, seed=124)
        rng = np.random.default_rng(4)
        window.append(rng.random(3))  # expires id 0
        with pytest.raises(ValueError):
            window.top_k([0, 5], 3)


class TestPinning:
    def test_pinned_query_object_survives_expiry(self):
        engine, window = make_window(n=10, window_size=10, seed=125)
        window.pin(0)
        rng = np.random.default_rng(5)
        event = window.append(rng.random(3))
        assert event.expired == 0
        assert 0 in engine.tree  # still physically present
        results, _ = window.top_k([0, 5], 3)
        assert all(r.object_id != 0 for r in results)

    def test_pinned_ghost_excluded_from_scores(self):
        engine, window = make_window(n=12, window_size=12, seed=126)
        window.pin(0)
        rng = np.random.default_rng(6)
        window.append(rng.random(3))  # 0 expires but stays pinned
        queries = window.live_ids[:2]
        results, _ = window.top_k(queries, 4)
        truth = brute_force_scores(
            engine.space, queries, universe=window.live_ids
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:4]

    def test_unpin_deletes_departed_ghost(self):
        engine, window = make_window(n=8, window_size=8, seed=127)
        window.pin(0)
        rng = np.random.default_rng(7)
        window.append(rng.random(3))
        assert 0 in engine.tree
        window.unpin(0)
        assert 0 not in engine.tree

    def test_index_restored_after_query(self):
        engine, window = make_window(n=10, window_size=10, seed=128)
        window.pin(0)
        rng = np.random.default_rng(8)
        window.append(rng.random(3))
        before = len(engine.tree)
        window.top_k(window.live_ids[:2], 3)
        assert len(engine.tree) == before
        engine.tree.check_invariants()


class TestGhostQueryIsReadOnly:
    """Regression: ghost handling must not churn the index.

    The original implementation answered queries over a window holding
    pinned ghosts by deleting each ghost, running the query, and
    re-inserting — every query rewrote tree pages.  Ghosts are now
    excluded arithmetically at scoring time, so a query must leave the
    tree's write/allocation counters exactly where they were.
    """

    def test_ghost_query_leaves_page_write_counters_untouched(self):
        engine, window = make_window(n=12, window_size=12, seed=131)
        window.pin(0)
        rng = np.random.default_rng(10)
        window.append(rng.random(3))  # 0 expires, stays pinned (ghost)
        assert 0 in engine.tree and 0 not in window.live_ids
        stats = engine.buffers.index_buffer.stats
        writes = stats.logical_writes
        allocated = stats.pages_allocated
        tree_size = len(engine.tree)
        window.top_k(window.live_ids[:2], 4)
        assert stats.logical_writes == writes
        assert stats.pages_allocated == allocated
        assert len(engine.tree) == tree_size

    def test_ghost_query_reads_but_never_writes_many_times(self):
        engine, window = make_window(n=10, window_size=10, seed=132)
        window.pin(0)
        window.pin(1)
        rng = np.random.default_rng(11)
        window.append(rng.random(3))
        window.append(rng.random(3))  # both 0 and 1 are ghosts now
        stats = engine.buffers.index_buffer.stats
        writes = stats.logical_writes
        for _ in range(5):
            window.top_k(window.live_ids[:2], 3)
        assert stats.logical_writes == writes
        engine.tree.check_invariants()


class TestUnpinEdgeCases:
    def test_double_unpin_is_a_noop(self):
        engine, window = make_window(n=8, window_size=8, seed=133)
        window.pin(0)
        rng = np.random.default_rng(12)
        window.append(rng.random(3))  # 0 expires as a pinned ghost
        window.unpin(0)
        assert 0 not in engine.tree
        # second unpin: ghost already deleted — must not raise.
        window.unpin(0)
        assert 0 not in engine.tree

    def test_unpin_never_pinned_is_a_noop(self):
        engine, window = make_window(n=8, window_size=8, seed=134)
        window.unpin(3)  # live, never pinned
        assert 3 in engine.tree
        assert 3 in window.live_ids
        window.unpin(999)  # nonexistent id

    def test_unpin_live_object_keeps_it_in_window(self):
        engine, window = make_window(n=8, window_size=8, seed=135)
        window.pin(2)
        window.unpin(2)  # still inside the window: must not delete
        assert 2 in engine.tree
        assert 2 in window.live_ids
        results, _ = window.top_k([2, 3], 4)
        assert {r.object_id for r in results} <= set(window.live_ids)


class TestTimeBasedWindow:
    def make_timed(self, n=10, horizon=10.0, seed=136):
        engine = make_engine(n=n, seed=seed)
        clock = {"now": 0.0}
        window = SlidingWindowTopK(
            engine, horizon=horizon, clock=lambda: clock["now"]
        )
        return engine, window, clock

    def test_nothing_expires_inside_horizon(self):
        engine, window, clock = self.make_timed()
        clock["now"] = 5.0
        event = window.append(np.full(3, 0.5))
        assert event.expired is None and event.expired_ids == ()
        assert len(window) == 11

    def test_everything_stale_expires_at_once(self):
        engine, window, clock = self.make_timed(n=6, horizon=10.0)
        clock["now"] = 11.0  # initial batch (t=0) is now stale
        event = window.append(np.full(3, 0.5))
        assert event.expired_ids == (0, 1, 2, 3, 4, 5)
        assert event.expired == 0  # oldest first
        assert window.live_ids == [event.arrived]
        for victim in event.expired_ids:
            assert victim not in engine.tree

    def test_explicit_timestamps_drive_expiry(self):
        engine, window, clock = self.make_timed(n=4, horizon=2.0)
        first = window.append(np.full(3, 0.2), timestamp=1.0)
        assert first.expired is None
        second = window.append(np.full(3, 0.8), timestamp=3.5)
        # horizon 2.0: deadline 1.5 → initial four (t=0) expire,
        # the t=1.0 arrival expires too, the new arrival survives.
        assert set(second.expired_ids) == {0, 1, 2, 3, first.arrived}
        assert window.live_ids == [second.arrived]

    def test_pinned_ghosts_respected_in_time_windows(self):
        engine, window, clock = self.make_timed(n=6, horizon=5.0)
        window.pin(0)
        clock["now"] = 6.0
        event = window.append(np.full(3, 0.4))
        assert 0 in event.expired_ids
        assert 0 in engine.tree  # pinned: physically retained
        results, _ = window.top_k([0], 3)
        assert all(r.object_id != 0 for r in results)
        truth = brute_force_scores(
            engine.space, [0], universe=window.live_ids
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:3]

    def test_window_shape_validation(self):
        engine = make_engine(n=5, seed=137)
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine)  # neither shape
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, window_size=8, horizon=3.0)  # both
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, horizon=0.0)
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, horizon=-1.0)


class TestStandingQueryDelegation:
    def test_registered_query_tracks_oracle_through_churn(self):
        engine, window = make_window(n=20, window_size=20, seed=138)
        window.pin(0)
        window.pin(5)
        maintainer = window.register([0, 5], 4)
        rng = np.random.default_rng(13)
        for _ in range(15):
            window.append(rng.random(3))
            truth = brute_force_scores(
                engine.space, [0, 5], universe=window.live_ids
            )
            expected = sorted(truth.values(), reverse=True)[:4]
            assert [r.score for r in maintainer.result] == expected
        # top_k with the matching (Q, k) answers from the maintainer.
        results, stats = window.top_k([5, 0], 4)
        assert [
            (r.object_id, r.score) for r in results
        ] == [(r.object_id, r.score) for r in maintainer.result]
        assert stats is maintainer.last_stats
        window.unregister(maintainer)
        assert window.standing_queries == []

    def test_pinned_ghost_expiry_reaches_maintainer(self):
        engine, window = make_window(n=10, window_size=10, seed=139)
        window.pin(0)
        maintainer = window.register([0], 5)
        assert 0 in maintainer.member_ids
        rng = np.random.default_rng(14)
        window.append(rng.random(3))  # 0 expires logically, stays in tree
        assert 0 in engine.tree
        assert 0 not in maintainer.member_ids
        truth = brute_force_scores(
            engine.space, [0], universe=window.live_ids
        )
        assert [r.score for r in maintainer.result] == sorted(
            truth.values(), reverse=True
        )[:5]


class TestContinuousScenario:
    def test_long_stream_stays_consistent(self):
        engine, window = make_window(n=25, window_size=25, seed=129)
        rng = np.random.default_rng(9)
        for step in range(30):
            window.append(rng.random(3))
            if step % 10 == 9:
                queries = window.live_ids[:2]
                results, _ = window.top_k(queries, 3)
                truth = brute_force_scores(
                    engine.space, queries, universe=window.live_ids
                )
                assert [r.score for r in results] == sorted(
                    truth.values(), reverse=True
                )[:3]
        engine.tree.check_invariants()
