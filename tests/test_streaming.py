"""Sliding-window continuous top-k dominating queries."""

import numpy as np
import pytest

from repro.core.brute_force import brute_force_scores
from repro.streaming import SlidingWindowTopK, WindowEvent

from tests.conftest import make_engine


def make_window(n=40, window_size=40, seed=121):
    engine = make_engine(n=n, seed=seed)
    return engine, SlidingWindowTopK(engine, window_size=window_size)


class TestMaintenance:
    def test_append_without_expiry(self):
        engine, window = make_window(n=10, window_size=20)
        event = window.append(np.array([0.5, 0.5, 0.5]))
        assert event.arrived == 10
        assert event.expired is None
        assert len(window) == 11

    def test_append_with_expiry(self):
        engine, window = make_window(n=20, window_size=20)
        event = window.append(np.array([0.1, 0.2, 0.3]))
        assert event.expired == 0  # oldest id expires
        assert 0 not in engine.tree
        assert len(window) == 20

    def test_fifo_expiry_order(self):
        engine, window = make_window(n=5, window_size=5)
        rng = np.random.default_rng(1)
        expired = [window.append(rng.random(3)).expired for _ in range(3)]
        assert expired == [0, 1, 2]

    def test_window_size_validation(self):
        engine, _ = make_window(n=5, window_size=5)
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, window_size=0)
        with pytest.raises(ValueError):
            SlidingWindowTopK(engine, window_size=3)  # engine too full


class TestQuerying:
    def test_results_match_oracle_on_window(self):
        engine, window = make_window(n=30, window_size=30, seed=122)
        rng = np.random.default_rng(2)
        for _ in range(10):
            window.append(rng.random(3))
        queries = window.live_ids[:2]
        results, _ = window.top_k(queries, 5)
        truth = brute_force_scores(
            engine.space, queries, universe=window.live_ids
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]

    def test_expired_objects_never_reported(self):
        engine, window = make_window(n=20, window_size=20, seed=123)
        rng = np.random.default_rng(3)
        expired = set()
        for _ in range(8):
            event = window.append(rng.random(3))
            expired.add(event.expired)
        queries = window.live_ids[-2:]
        results, _ = window.top_k(queries, 10)
        assert not ({r.object_id for r in results} & expired)

    def test_expired_query_object_rejected(self):
        engine, window = make_window(n=10, window_size=10, seed=124)
        rng = np.random.default_rng(4)
        window.append(rng.random(3))  # expires id 0
        with pytest.raises(ValueError):
            window.top_k([0, 5], 3)


class TestPinning:
    def test_pinned_query_object_survives_expiry(self):
        engine, window = make_window(n=10, window_size=10, seed=125)
        window.pin(0)
        rng = np.random.default_rng(5)
        event = window.append(rng.random(3))
        assert event.expired == 0
        assert 0 in engine.tree  # still physically present
        results, _ = window.top_k([0, 5], 3)
        assert all(r.object_id != 0 for r in results)

    def test_pinned_ghost_excluded_from_scores(self):
        engine, window = make_window(n=12, window_size=12, seed=126)
        window.pin(0)
        rng = np.random.default_rng(6)
        window.append(rng.random(3))  # 0 expires but stays pinned
        queries = window.live_ids[:2]
        results, _ = window.top_k(queries, 4)
        truth = brute_force_scores(
            engine.space, queries, universe=window.live_ids
        )
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:4]

    def test_unpin_deletes_departed_ghost(self):
        engine, window = make_window(n=8, window_size=8, seed=127)
        window.pin(0)
        rng = np.random.default_rng(7)
        window.append(rng.random(3))
        assert 0 in engine.tree
        window.unpin(0)
        assert 0 not in engine.tree

    def test_index_restored_after_query(self):
        engine, window = make_window(n=10, window_size=10, seed=128)
        window.pin(0)
        rng = np.random.default_rng(8)
        window.append(rng.random(3))
        before = len(engine.tree)
        window.top_k(window.live_ids[:2], 3)
        assert len(engine.tree) == before
        engine.tree.check_invariants()


class TestContinuousScenario:
    def test_long_stream_stays_consistent(self):
        engine, window = make_window(n=25, window_size=25, seed=129)
        rng = np.random.default_rng(9)
        for step in range(30):
            window.append(rng.random(3))
            if step % 10 == 9:
                queries = window.live_ids[:2]
                results, _ = window.top_k(queries, 3)
                truth = brute_force_scores(
                    engine.space, queries, universe=window.live_ids
                )
                assert [r.score for r in results] == sorted(
                    truth.values(), reverse=True
                )[:3]
        engine.tree.check_invariants()
