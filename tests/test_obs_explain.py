"""Structure and plumbing of the explain subsystem.

Covers the ``QueryPlan`` artifact itself (schema, round-trip, funnel
and index-profile content), the facade and service surfaces that carry
it, the ``repro-trace explain`` renderer, and the phase-latency
histograms fed by the tracer listener.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.explain import (
    ExplainCollector,
    QueryPlan,
    format_plan,
    load_plan,
    validate_plan,
)
from tests.conftest import make_engine

QUERY = [0, 1, 2]
K = 5


@pytest.fixture(scope="module")
def explained():
    engine = make_engine(n=100, dims=3, seed=0)
    results, stats, plan = engine.explain(QUERY, K, algorithm="pba2")
    return engine, results, stats, plan


class TestQueryPlan:
    def test_document_shape(self, explained):
        _engine, results, stats, plan = explained
        document = plan.as_dict()
        validate_plan(document)
        assert document["format"] == "repro-plan/1"
        assert document["algorithm"] == "pba2"
        assert document["k"] == K
        assert document["m"] == len(QUERY)
        assert document["counters"]["distance_computations"] == (
            stats.distance_computations
        )
        phases = [stage["phase"] for stage in document["funnel"]]
        assert phases == [
            "pba.retrieval",
            "pba.candidacy",
            "pba.confirmation",
            "pba.report",
        ]
        report = document["funnel"][-1]
        assert report["survivors"] == len(results)

    def test_index_profile_levels(self, explained):
        _engine, _results, _stats, plan = explained
        profile = plan.as_dict()["index_profile"]
        levels = profile["levels"]
        assert levels, "an M-tree query must visit at least the root"
        assert [row["level"] for row in levels] == sorted(
            row["level"] for row in levels
        )
        root = levels[0]
        assert root["level"] == 0
        assert root["nodes_visited"] >= 1
        # per-level I/O flows through the existing buffer accounting:
        # the visited pages' faults+hits must all land on some level.
        total_io = sum(
            row["page_faults"] + row["buffer_hits"] for row in levels
        )
        assert total_io >= sum(row["nodes_visited"] for row in levels)
        assert "incremental_nn" in profile["ops"]

    def test_timeline_and_rules(self, explained):
        _engine, _results, _stats, plan = explained
        document = plan.as_dict()
        assert document["timeline"], "PBA must snapshot G/heap evolution"
        kinds = {entry["phase"] for entry in document["timeline"]}
        assert "pba.confirm" in kinds
        assert document["discard_rules"], "discards must aggregate"

    def test_round_trip(self, explained, tmp_path):
        _engine, _results, _stats, plan = explained
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        loaded = load_plan(str(path))
        validate_plan(loaded)
        assert loaded == plan.as_dict()
        rebuilt = QueryPlan.from_dict(loaded)
        assert rebuilt.as_dict() == plan.as_dict()

    def test_summary_digest(self, explained):
        _engine, _results, stats, plan = explained
        digest = plan.summary()
        assert digest["algorithm"] == "pba2"
        assert digest["distance_computations"] == (
            stats.distance_computations
        )

    def test_validate_rejects_nonconserving_funnel(self, explained):
        _engine, _results, _stats, plan = explained
        document = plan.as_dict()
        document["funnel"][0]["survivors"] += 1
        with pytest.raises(ValueError, match="conserv"):
            validate_plan(document)

    def test_load_plan_diagnostics(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty or corrupt"):
            load_plan(str(empty))
        truncated = tmp_path / "trunc.json"
        truncated.write_text('{"format": "repro-plan/1", "funnel": [')
        with pytest.raises(ValueError, match="empty or corrupt"):
            load_plan(str(truncated))

    def test_format_plan_renders_funnel(self, explained):
        _engine, _results, _stats, plan = explained
        text = format_plan(plan.as_dict())
        assert "pruning funnel" in text
        assert "pba.confirmation" in text
        assert "index visit profile" in text


class TestCollectorCaps:
    def test_timeline_is_bounded(self):
        collector = ExplainCollector()
        for i in range(20_000):
            collector.snapshot("tick", i=i)
        assert len(collector.timeline()) <= 10_000
        assert collector.timeline_dropped > 0


class TestFacade:
    def test_run_explain_flag(self):
        import repro.api as api

        engine = make_engine(n=80, dims=3, seed=1)
        plain = api.run(engine, api.Query(QUERY, K))
        assert plain.plan is None
        explained = api.run(engine, api.Query(QUERY, K), explain=True)
        assert explained.plan is not None
        assert explained.object_ids == plain.object_ids
        assert explained.stats.distance_computations == (
            plain.stats.distance_computations
        )
        via_query = api.run(
            engine, api.Query(QUERY, K, explain=True)
        )
        assert via_query.plan is not None


class TestService:
    def test_query_sync_explain(self):
        from repro.service.server import QueryService, ServiceConfig

        engine = make_engine(n=80, dims=3, seed=1)
        with QueryService(engine, ServiceConfig(workers=2)) as service:
            explained = service.query_sync(QUERY, K, explain=True)
            assert explained.plan is not None
            assert not explained.cached and not explained.coalesced
            validate_plan(explained.plan.as_dict())
            # the explained execution warms the cache for plain calls
            plain = service.query_sync(QUERY, K)
            assert plain.cached
            assert plain.plan is None
            assert [
                (i.object_id, i.score) for i in plain.results
            ] == [(i.object_id, i.score) for i in explained.results]
            # and an explained request never serves from the cache
            again = service.query_sync(QUERY, K, explain=True)
            assert again.plan is not None and not again.cached
            snapshot = service.snapshot()
            assert snapshot["explain"]["requests"] == 2
            assert snapshot["explain"]["last_plan"]["algorithm"] == "pba2"

    def test_query_async_explain(self):
        import asyncio

        from repro.service.server import QueryService, ServiceConfig

        async def drive(service):
            return await service.query(QUERY, K, explain=True)

        engine = make_engine(n=80, dims=3, seed=1)
        with QueryService(engine, ServiceConfig(workers=2)) as service:
            response = asyncio.run(drive(service))
            assert response.plan is not None
            validate_plan(response.plan.as_dict())

    def test_phase_latency_histograms(self):
        from repro.obs.trace import Tracer
        from repro.service.server import QueryService, ServiceConfig

        engine = make_engine(n=80, dims=3, seed=1)
        config = ServiceConfig(workers=2, tracer=Tracer())
        with QueryService(engine, config) as service:
            service.query_sync(QUERY, K, algorithm="sba")
            service.query_sync([4, 9], 3, algorithm="pba2")
            instruments = service.snapshot()["instruments"]
            phase_names = [
                name
                for name in instruments
                if name.startswith("phase_") and name.endswith("_seconds")
            ]
            assert any("sba" in name for name in phase_names)
            assert any("pba" in name for name in phase_names)
            for name in phase_names:
                histogram = instruments[name]
                assert histogram["count"] >= 1
                assert histogram["sum"] >= 0.0
            exposition = service.metrics_prometheus()
            assert "repro_phase_" in exposition
            assert "_seconds_bucket" in exposition


class TestCli:
    def test_explain_subcommand(self, tmp_path, capsys):
        from repro.obs.cli import main

        engine = make_engine(n=80, dims=3, seed=1)
        _r, _s, plan = engine.explain(QUERY, K, algorithm="sba")
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        chrome = tmp_path / "plan.chrome.json"
        assert main(["explain", str(path), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "pruning funnel" in out
        assert "sba.skyline" in out
        document = json.loads(chrome.read_text())
        assert document["traceEvents"]

    def test_explain_subcommand_bad_file(self, tmp_path, capsys):
        from repro.obs.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["explain", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-trace: error:")
        assert err.count("\n") == 1


class TestStreaming:
    def test_explain_update_plan(self):
        from repro.streaming.continuous import ContinuousTopK

        engine = make_engine(n=80, dims=3, seed=1)
        maintainer = ContinuousTopK(engine, QUERY, K, aux_mirror=False)
        delta, plan = maintainer.explain_update("delete", 40)
        assert delta is not None or plan is not None
        document = plan.as_dict()
        validate_plan(document)
        assert document["algorithm"] == "stream.delete"
        stage = document["funnel"][0]
        assert stage["phase"] == "stream.delete"
        assert stage["entering"] == 80
        assert document["timeline"]

    def test_explain_update_rejects_bad_op(self):
        from repro.streaming.continuous import ContinuousTopK

        engine = make_engine(n=40, dims=3, seed=1)
        maintainer = ContinuousTopK(engine, QUERY, K, aux_mirror=False)
        with pytest.raises(ValueError, match="op must be"):
            maintainer.explain_update("upsert", 3)
