"""Unit tests for the disk-backed B+-tree."""

import random

import pytest

from repro.btree import BPlusTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pages import PageManager


def make_tree(order=6, capacity=16):
    buf = LRUBuffer(PageManager(), capacity=capacity)
    return BPlusTree(buf, order=order), buf


class TestBasics:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert 1 not in tree
        assert list(tree.items()) == []

    def test_insert_and_get(self):
        tree, _ = make_tree()
        tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_overwrite_keeps_size(self):
        tree, _ = make_tree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_get_default(self):
        tree, _ = make_tree()
        assert tree.get(9, default="d") == "d"

    def test_order_below_three_rejected(self):
        buf = LRUBuffer(PageManager(), capacity=4)
        with pytest.raises(ValueError):
            BPlusTree(buf, order=2)

    def test_default_order_from_page_size(self):
        buf = LRUBuffer(PageManager(), capacity=4)
        tree = BPlusTree(buf)
        assert tree.order >= 3


class TestSplitsAndOrder:
    def test_sequential_insert_grows_height(self):
        tree, _ = make_tree(order=4)
        for key in range(100):
            tree.insert(key, key)
        assert tree.height > 1
        tree.check_invariants()

    def test_random_insert_keeps_sorted_iteration(self):
        tree, _ = make_tree(order=5)
        keys = list(range(300))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, -key)
        assert list(tree.keys()) == sorted(keys)
        tree.check_invariants()

    def test_reverse_insert(self):
        tree, _ = make_tree(order=4)
        for key in reversed(range(120)):
            tree.insert(key, key)
        assert list(tree.keys()) == list(range(120))
        tree.check_invariants()

    def test_all_values_retrievable_after_splits(self):
        tree, _ = make_tree(order=4)
        keys = random.Random(7).sample(range(10_000), 500)
        for key in keys:
            tree.insert(key, key * 3)
        for key in keys:
            assert tree.get(key) == key * 3


class TestRangeScan:
    @pytest.fixture
    def populated(self):
        tree, buf = make_tree(order=5)
        for key in range(0, 100, 2):  # evens 0..98
            tree.insert(key, f"v{key}")
        return tree

    def test_full_scan(self, populated):
        assert [k for k, _ in populated.items()] == list(range(0, 100, 2))

    def test_bounded_scan(self, populated):
        assert [k for k, _ in populated.items(low=10, high=20)] == [
            10, 12, 14, 16, 18, 20,
        ]

    def test_low_bound_between_keys(self, populated):
        assert next(iter(populated.items(low=11)))[0] == 12

    def test_high_bound_exclusive_of_later(self, populated):
        keys = [k for k, _ in populated.items(high=5)]
        assert keys == [0, 2, 4]

    def test_empty_range(self, populated):
        assert list(populated.items(low=200)) == []


class TestDelete:
    def test_delete_present(self):
        tree, _ = make_tree()
        tree.insert(1, "a")
        assert tree.delete(1)
        assert 1 not in tree
        assert len(tree) == 0

    def test_delete_absent_returns_false(self):
        tree, _ = make_tree()
        assert not tree.delete(99)

    def test_delete_many_keeps_invariants(self):
        tree, _ = make_tree(order=4)
        for key in range(200):
            tree.insert(key, key)
        for key in range(0, 200, 2):
            assert tree.delete(key)
        assert list(tree.keys()) == list(range(1, 200, 2))
        tree.check_invariants()

    def test_reinsert_after_delete(self):
        tree, _ = make_tree(order=4)
        for key in range(50):
            tree.insert(key, key)
        tree.delete(25)
        tree.insert(25, "back")
        assert tree.get(25) == "back"
        tree.check_invariants()


class TestDiskBehaviour:
    def test_accesses_charge_buffer(self):
        tree, buf = make_tree(order=4, capacity=2)
        for key in range(100):
            tree.insert(key, key)
        before = buf.stats.page_faults
        for key in range(100):
            tree.get(key)
        assert buf.stats.page_faults > before  # tiny buffer must fault

    def test_drop_releases_pages(self):
        tree, buf = make_tree(order=4)
        for key in range(100):
            tree.insert(key, key)
        pages = tree.num_pages
        assert pages > 1
        tree.drop()
        assert len(buf.manager) == 0

    def test_num_pages_grows_with_data(self):
        small, _ = make_tree(order=4)
        big, _ = make_tree(order=4)
        for key in range(10):
            small.insert(key, key)
        for key in range(500):
            big.insert(key, key)
        assert big.num_pages > small.num_pages
