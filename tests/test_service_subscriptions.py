"""Standing-query subscriptions through :class:`QueryService`."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.brute_force import brute_force_scores
from repro.service import QueryService, ServiceConfig

from tests.conftest import make_engine

QUERY = [2, 7]
K = 4


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def service(small_engine):
    with QueryService(small_engine, ServiceConfig(workers=2)) as svc:
        yield svc


def oracle_pairs(engine, query_ids, k):
    truth = brute_force_scores(
        engine.space, query_ids, universe=sorted(engine.tree.object_ids())
    )
    ranked = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(oid, score) for oid, score in ranked[:k]]


class TestLifecycle:
    def test_subscribe_returns_bootstrap_result(self, service):
        sub = service.subscribe_sync(QUERY, K)
        assert [
            (r.object_id, r.score) for r in sub.result
        ] == oracle_pairs(service.engine, QUERY, K)
        assert service.subscriptions.active == 1
        service.unsubscribe_sync(sub)
        assert service.subscriptions.active == 0

    def test_unsubscribe_is_idempotent(self, service):
        sub = service.subscribe_sync(QUERY, K)
        service.unsubscribe_sync(sub)
        service.unsubscribe_sync(sub)
        assert service.subscriptions.snapshot()["closed"] == 1

    def test_poll_after_unsubscribe_raises(self, service):
        sub = service.subscribe_sync(QUERY, K)
        service.unsubscribe_sync(sub)
        with pytest.raises(ValueError):
            service.poll_sync(sub)

    def test_close_tears_down_subscriptions(self, small_engine):
        svc = QueryService(small_engine, ServiceConfig(workers=1))
        sub = svc.subscribe_sync(QUERY, K)
        svc.close()
        assert sub.closed
        assert svc.subscriptions.active == 0

    def test_queue_capacity_validation(self, service):
        with pytest.raises(ValueError):
            service.subscribe_sync(QUERY, K, queue_capacity=0)


class TestDeltaFlow:
    def test_writes_stream_deltas_and_track_oracle(self, service):
        sub = service.subscribe_sync(QUERY, K)
        rng = np.random.default_rng(40)
        # a burst of random arrivals reshuffles the dense top of a
        # 120-object window (seed-pinned, hence deterministic).
        for i in range(4):
            service.insert_sync(rng.random(3))
        deltas = service.poll_sync(sub)
        assert deltas, "displacing writes must produce deltas"
        assert all(d.kind in ("repair", "recompute") for d in deltas)
        assert [
            (r.object_id, r.score) for r in sub.result
        ] == oracle_pairs(service.engine, QUERY, K)
        # the last delta's full-state result equals the live result.
        assert list(deltas[-1].result) == sub.result
        service.unsubscribe_sync(sub)

    def test_max_deltas_bounds_the_drain(self, service):
        sub = service.subscribe_sync(QUERY, K)
        rng = np.random.default_rng(40)
        for _ in range(4):
            service.insert_sync(rng.random(3))
        pending = sub.pending
        assert pending >= 2  # seed-pinned: several displacing writes
        first = service.poll_sync(sub, max_deltas=1)
        rest = service.poll_sync(sub)
        assert len(first) == 1
        assert len(first) + len(rest) == pending
        assert sub.delivered == pending
        service.unsubscribe_sync(sub)

    def test_overflow_resyncs_with_fresh_state(self, small_engine):
        config = ServiceConfig(workers=1, subscription_queue=2)
        with QueryService(small_engine, config) as svc:
            sub = svc.subscribe_sync(QUERY, K)
            rng = np.random.default_rng(40)
            for _ in range(8):
                svc.insert_sync(rng.random(3))
            assert sub.resync_pending
            deltas = svc.poll_sync(sub)
            assert deltas[0].kind == "resync"
            assert sub.overflows >= 1
            # no stale state after recovery: matches the oracle.
            assert [
                (r.object_id, r.score) for r in sub.result
            ] == oracle_pairs(svc.engine, QUERY, K)
            assert svc.subscriptions.snapshot()["overflows"] >= 1
            svc.unsubscribe_sync(sub)

    def test_delta_lag_recorded(self, service):
        sub = service.subscribe_sync(QUERY, K)
        rng = np.random.default_rng(40)
        while sub.pending == 0:
            service.insert_sync(rng.random(3))
        service.poll_sync(sub)
        snap = service.subscriptions.snapshot()
        assert snap["delta_lag"]["count"] >= 1
        service.unsubscribe_sync(sub)


class TestCacheIntegration:
    def test_standing_query_hits_cache_across_writes(self, service):
        sub = service.subscribe_sync(QUERY, K)
        r1 = service.query_sync(QUERY, K)
        assert r1.cached  # primed by the subscription bootstrap
        service.insert_sync(service.engine.space.payload(QUERY[0]))
        r2 = service.query_sync(QUERY, K)
        assert r2.cached  # refreshed, not flushed
        assert r2.epoch == service.engine.epoch
        assert [
            (r.object_id, r.score) for r in r2.results
        ] == oracle_pairs(service.engine, QUERY, K)
        service.unsubscribe_sync(sub)

    def test_unrelated_queries_still_flushed(self, service):
        sub = service.subscribe_sync(QUERY, K)
        other = [1, 5]
        service.query_sync(other, K)
        service.insert_sync(service.engine.space.payload(QUERY[0]))
        r = service.query_sync(other, K)
        assert not r.cached  # non-subscribed keys keep epoch semantics
        service.unsubscribe_sync(sub)

    def test_unsubscribed_key_returns_to_flush_lifecycle(self, service):
        sub = service.subscribe_sync(QUERY, K)
        service.unsubscribe_sync(sub)
        r1 = service.query_sync(QUERY, K)
        assert not r1.cached  # unpin dropped the entry
        service.insert_sync(service.engine.space.payload(QUERY[0]))
        r2 = service.query_sync(QUERY, K)
        assert not r2.cached

    def test_key_normalized_like_one_shot_queries(self, service):
        sub = service.subscribe_sync([7, 2], K)  # unsorted on purpose
        r = service.query_sync([2, 7], K)
        assert r.cached
        assert sub.key == ((2, 7), K, "pba2")
        service.unsubscribe_sync(sub)


class TestAsyncFrontend:
    def test_async_subscribe_poll_unsubscribe(self, service):
        async def scenario():
            sub = await service.subscribe(QUERY, K)
            rng = np.random.default_rng(40)
            while sub.pending == 0:
                await service.insert(rng.random(3))
            deltas = await service.poll(sub)
            await service.unsubscribe(sub)
            return sub, deltas

        sub, deltas = run(scenario())
        assert deltas and deltas[-1].op == "insert"
        assert sub.closed

    def test_metrics_snapshot_exposes_subscriptions(self, service):
        sub = service.subscribe_sync(QUERY, K)
        snap = service.registry.collect()
        assert snap["subscriptions"]["active"] == 1
        per = snap["subscriptions"]["per_subscription"]
        assert per[0]["query_ids"] == sorted(QUERY)
        service.unsubscribe_sync(sub)
