"""The TopKDominatingEngine facade: API, accounting, registry."""

import random

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    EuclideanMetric,
    MetricSpace,
    PruningConfig,
    TopKDominatingEngine,
)
from repro.metric.counting import CountingMetric
from repro.metric.safety import safe_lower_bound

from tests.conftest import make_engine, make_vector_space


class TestConstruction:
    def test_wraps_plain_metric_in_counter(self):
        rng = np.random.default_rng(0)
        space = MetricSpace(list(rng.random((50, 2))), EuclideanMetric())
        engine = TopKDominatingEngine(space)
        assert isinstance(engine.space.metric, CountingMetric)

    def test_keeps_existing_counter(self):
        space = make_vector_space(50)
        metric = space.metric
        engine = TopKDominatingEngine(space)
        assert engine.space.metric is metric

    def test_build_cost_recorded(self):
        engine = make_engine(n=80)
        assert engine.build_distance_computations > 0

    def test_buffers_sized(self):
        engine = make_engine(n=80)
        assert engine.buffers.index_buffer.capacity >= 1
        assert engine.buffers.aux_buffer.capacity >= 1

    def test_bulk_load_option(self):
        from repro.core.brute_force import brute_force_scores

        space = make_vector_space(120, dims=3, seed=65)
        engine = TopKDominatingEngine(
            space, rng=random.Random(65), index_options={"bulk_load": True}
        )
        engine.tree.check_invariants()
        truth = brute_force_scores(engine.space, [0, 60])
        results, _ = engine.top_k_dominating([0, 60], 5)
        assert [r.score for r in results] == sorted(
            truth.values(), reverse=True
        )[:5]


class TestRegistry:
    def test_known_algorithms(self):
        assert set(ALGORITHMS) == {
            "brute", "sba", "aba", "pba1", "pba2", "apx",
        }

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_make_algorithm(self, name):
        engine = make_engine(n=40)
        algo = engine.make_algorithm(name)
        assert algo.name.lower().replace("force", "") in (
            name, "brute"
        ) or algo.name in ("PBA1", "PBA2", "SBA", "ABA", "BruteForce")

    def test_case_insensitive(self):
        engine = make_engine(n=40)
        assert engine.make_algorithm("PBA2").name == "PBA2"

    def test_unknown_algorithm_rejected(self):
        engine = make_engine(n=40)
        with pytest.raises(ValueError):
            engine.make_algorithm("quantum")

    def test_pruning_config_forwarded(self):
        engine = make_engine(n=40)
        config = PruningConfig.none()
        algo = engine.make_algorithm("pba1", pruning=config)
        assert algo.pruning is config


class TestMeasurement:
    def test_stats_are_per_query_deltas(self):
        engine = make_engine(n=100, seed=61)
        _r1, s1 = engine.top_k_dominating([0, 50], 5, algorithm="pba2")
        _r2, s2 = engine.top_k_dominating([0, 50], 5, algorithm="pba2")
        # second run re-pays distances (fresh vector cache) but not
        # multiplicatively; both must be positive and finite.
        assert s1.distance_computations > 0
        assert s2.distance_computations > 0
        assert s1.cpu_seconds > 0

    def test_io_seconds_consistent_with_faults(self):
        engine = make_engine(n=100, seed=62)
        _r, stats = engine.top_k_dominating([1, 60], 5, algorithm="sba")
        assert stats.io_seconds == pytest.approx(
            stats.io.page_faults * 0.008
        )

    def test_stream_api_progressive(self):
        engine = make_engine(n=80, seed=63)
        gen = engine.stream([0, 40], 5)
        first = next(gen)
        assert hasattr(first, "object_id") and hasattr(first, "score")
        gen.close()

    def test_results_and_stats_tuple(self):
        engine = make_engine(n=60, seed=64)
        results, stats = engine.top_k_dominating([2, 30], 4)
        assert len(results) == 4
        assert stats.results_reported == 4

    def test_concurrent_query_stats_partition_shared_counters(self):
        # regression: per-query stats must reflect only the
        # query's own page faults and distance computations, even while
        # neighbours run concurrently — the serving layer enacts
        # io_seconds as real latency and caches the stats, so absorbed
        # foreign faults were a behavioural bug, not just noisy
        # reporting.  Exactness is checked as a partition: each access
        # is charged to exactly one query, so per-query deltas sum to
        # the global delta.
        import threading

        engine = make_engine(n=100, seed=65)
        engine.prepare_for_concurrency()
        io_before = engine.buffers.combined_io()
        dist_before = engine.counting_metric.snapshot()
        queries = [[1, 2, 3], [40, 41, 42], [70, 71, 72], [10, 50, 90]]
        collected = []
        barrier = threading.Barrier(len(queries))

        def worker(query_ids):
            barrier.wait()  # maximize interleaving
            _results, stats = engine.top_k_dominating(query_ids, 5)
            collected.append(stats)

        threads = [
            threading.Thread(target=worker, args=(q,)) for q in queries
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        io_delta = engine.buffers.combined_io().delta_since(io_before)
        assert (
            sum(s.io.logical_reads for s in collected)
            == io_delta.logical_reads
        )
        assert (
            sum(s.io.page_faults for s in collected) == io_delta.page_faults
        )
        assert (
            sum(s.distance_computations for s in collected)
            == engine.counting_metric.snapshot() - dist_before
        )
        for stats in collected:
            assert stats.distance_computations > 0


class TestSafetyHelper:
    def test_zero_and_negative_clamped(self):
        assert safe_lower_bound(0.0) == 0.0
        assert safe_lower_bound(-1.0) == 0.0

    def test_padding_is_downward(self):
        assert safe_lower_bound(1.0) < 1.0
        assert safe_lower_bound(1.0) > 0.999999

    def test_tiny_values_stay_nonnegative(self):
        assert safe_lower_bound(1e-300) == 0.0
