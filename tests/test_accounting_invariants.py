"""Cross-cutting accounting invariants.

The benchmark numbers are only as good as the counters; these tests
pin down the bookkeeping identities every component must maintain.
"""

import random

import pytest

from repro import TopKDominatingEngine
from repro.datasets import select_query_objects

from tests.conftest import make_engine


@pytest.fixture(scope="module")
def engine():
    return make_engine(n=200, seed=131)


def _queries(engine, seed=0):
    return select_query_objects(
        engine.space, m=4, coverage=0.25, rng=random.Random(seed)
    )


class TestBufferIdentities:
    def test_accesses_split_into_hits_and_faults(self, engine):
        for buffer in (
            engine.buffers.index_buffer,
            engine.buffers.aux_buffer,
        ):
            stats = buffer.stats
            assert stats.logical_accesses == (
                stats.buffer_hits + stats.page_faults
            )

    def test_identity_preserved_across_queries(self, engine):
        queries = _queries(engine, seed=1)
        for algorithm in ("sba", "aba", "pba1", "pba2"):
            engine.top_k_dominating(queries, 5, algorithm=algorithm)
            for buffer in (
                engine.buffers.index_buffer,
                engine.buffers.aux_buffer,
            ):
                stats = buffer.stats
                assert stats.logical_accesses == (
                    stats.buffer_hits + stats.page_faults
                )


class TestDistanceAccounting:
    def test_engine_deltas_are_exclusive_and_exhaustive(self, engine):
        metric = engine.counting_metric
        queries = _queries(engine, seed=2)
        before = metric.count
        _results, stats = engine.top_k_dominating(queries, 5)
        after = metric.count
        assert stats.distance_computations == after - before

    def test_no_hidden_distance_channel_in_pba(self, engine):
        """Exact scoring must be distance-free: with all vectors
        pre-warmed by a prior identical query, a repeat run's distance
        count is driven by retrieval, not scoring."""
        queries = _queries(engine, seed=3)
        _r1, s1 = engine.top_k_dominating(queries, 5, algorithm="pba2")
        _r2, s2 = engine.top_k_dominating(queries, 5, algorithm="pba2")
        # the runs are independent (fresh caches), so equal work:
        assert abs(s1.distance_computations - s2.distance_computations) \
            <= s1.distance_computations * 0.01 + 5


class TestStatsScaling:
    def test_average_of_identical_runs_is_the_run(self, engine):
        queries = _queries(engine, seed=4)
        _r, single = engine.top_k_dominating(queries, 5, algorithm="pba2")
        total = type(single)()
        for _ in range(3):
            _r, stats = engine.top_k_dominating(
                queries, 5, algorithm="pba2"
            )
            total.merge(stats)
        averaged = total.scaled(3)
        assert averaged.distance_computations == pytest.approx(
            single.distance_computations, rel=0.02, abs=5
        )
        assert averaged.results_reported == single.results_reported


class TestCostModelConsistency:
    def test_io_seconds_equal_faults_times_cost(self, engine):
        queries = _queries(engine, seed=5)
        _r, stats = engine.top_k_dominating(queries, 5, algorithm="aba")
        assert stats.io_seconds == pytest.approx(
            stats.io.page_faults * 0.008
        )
        assert stats.total_seconds == pytest.approx(
            stats.cpu_seconds + stats.io_seconds
        )

    def test_results_reported_matches_k(self, engine):
        queries = _queries(engine, seed=6)
        for k in (1, 3, 7):
            _r, stats = engine.top_k_dominating(
                queries, k, algorithm="pba1"
            )
            assert stats.results_reported == k
