"""Checkpoint + recovery round trips (no crashes: the happy paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import open_engine
from repro.core.brute_force import brute_force_scores
from repro.recovery import RecoveryError, enable_durability, recover_engine
from repro.recovery.controller import _load_checkpoint
from repro.streaming.continuous import ContinuousTopK

from tests.conftest import make_vector_space

N = 60
DIMS = 3


def durable_engine(tmp_path, seed=5, n=N):
    space = make_vector_space(n=n, dims=DIMS, seed=seed)
    return open_engine(space, seed=seed, durability=str(tmp_path / "state"))


def apply_ops(engine, ops=12, seed=9):
    """A deterministic insert/delete mix; returns the rng payload seed."""
    rng = np.random.default_rng(seed)
    inserted = []
    for i in range(ops):
        if i % 4 == 3 and inserted:
            engine.delete_object(inserted.pop(0))
        else:
            inserted.append(engine.insert_object(rng.random(DIMS)))
    return inserted


def assert_matches_brute_force(engine, query_ids, k=5):
    live = sorted(engine.tree.object_ids())
    items, _stats = engine.top_k_dominating(list(query_ids), k)
    truth = brute_force_scores(engine.space, list(query_ids), universe=live)
    expected_scores = sorted(truth.values(), reverse=True)[:k]
    assert [item.score for item in items] == expected_scores
    for item in items:
        assert truth[item.object_id] == item.score


class TestRoundTrip:
    def test_wal_replay_without_periodic_checkpoint(self, tmp_path):
        engine = durable_engine(tmp_path)
        apply_ops(engine)
        expected_live = sorted(engine.tree.object_ids())
        expected_epoch = engine.epoch
        engine.durability.close()

        recovered = open_engine(recover_from=str(tmp_path / "state"))
        report = recovered.last_recovery
        assert report.checkpoint_epoch == 0  # only the base checkpoint
        assert report.recovered_epoch == expected_epoch
        assert report.replayed_commits == expected_epoch
        assert report.torn_bytes_truncated == 0
        assert sorted(recovered.tree.object_ids()) == expected_live
        assert_matches_brute_force(recovered, expected_live[:4])

    def test_checkpoint_truncates_wal_and_bounds_replay(self, tmp_path):
        engine = durable_engine(tmp_path)
        apply_ops(engine, ops=8)
        checkpoint_epoch = engine.epoch
        engine.checkpoint()
        apply_ops(engine, ops=5, seed=10)
        expected_epoch = engine.epoch
        expected_live = sorted(engine.tree.object_ids())
        engine.durability.close()

        recovered = recover_engine(str(tmp_path / "state"))
        report = recovered.last_recovery
        assert report.checkpoint_epoch == checkpoint_epoch
        assert report.recovered_epoch == expected_epoch
        # only the post-checkpoint tail is replayed.
        assert report.replayed_commits == expected_epoch - checkpoint_epoch
        assert sorted(recovered.tree.object_ids()) == expected_live
        assert_matches_brute_force(recovered, expected_live[:4])

    def test_recovered_engine_is_durable_and_recoverable_again(
        self, tmp_path
    ):
        engine = durable_engine(tmp_path)
        apply_ops(engine, ops=6)
        engine.durability.close()
        recovered = recover_engine(str(tmp_path / "state"))
        # the second generation keeps writing into the same history...
        apply_ops(recovered, ops=6, seed=21)
        recovered.checkpoint()
        expected_live = sorted(recovered.tree.object_ids())
        expected_epoch = recovered.epoch
        recovered.durability.close()
        # ...and a third generation recovers the union of both.
        third = recover_engine(str(tmp_path / "state"))
        assert third.epoch == expected_epoch
        assert sorted(third.tree.object_ids()) == expected_live
        assert_matches_brute_force(third, expected_live[:4])

    def test_out_of_band_checkpoint_leaves_the_wal_alone(self, tmp_path):
        engine = durable_engine(tmp_path)
        apply_ops(engine, ops=5)
        before = engine.durability.wal.snapshot()["records_appended"]
        target = engine.checkpoint(str(tmp_path / "oob.bin"))
        assert target == str(tmp_path / "oob.bin")
        state = _load_checkpoint(target)
        assert state["epoch"] == engine.epoch
        # in-place checkpoints reset the WAL; explicit-path ones must not.
        assert (
            engine.durability.wal.snapshot()["records_appended"] == before
        )


class TestStandingManifest:
    def test_standing_queries_survive_recovery(self, tmp_path):
        engine = durable_engine(tmp_path)
        maintainer = ContinuousTopK(engine, [3, 11], 4, "pba2")
        maintainer.attach()
        apply_ops(engine, ops=5)
        engine.durability.close()
        recovered = recover_engine(str(tmp_path / "state"))
        manifest = recovered.last_recovery.standing_queries
        assert len(manifest) == 1
        (entry,) = manifest.values()
        assert entry == {
            "query_ids": [3, 11], "k": 4, "algorithm": "pba2"
        }

    def test_detach_drops_the_manifest_entry(self, tmp_path):
        engine = durable_engine(tmp_path)
        maintainer = ContinuousTopK(engine, [3, 11], 4, "pba2")
        maintainer.attach()
        maintainer.detach()
        engine.durability.close()
        recovered = recover_engine(str(tmp_path / "state"))
        assert recovered.last_recovery.standing_queries == {}

    def test_checkpoint_embeds_aux_index_records(self, tmp_path):
        engine = durable_engine(tmp_path)
        maintainer = ContinuousTopK(engine, [3, 11], 4, "pba2")
        maintainer.attach()
        sid = maintainer._standing_sid
        target = engine.checkpoint(str(tmp_path / "aux.bin"))
        state = _load_checkpoint(target)
        assert state["standing_aux"][sid] == maintainer.aux_snapshot()
        assert state["standing_aux"][sid]  # the mirror is non-trivial


class TestGuards:
    def test_enable_durability_refuses_a_dirty_directory(self, tmp_path):
        engine = durable_engine(tmp_path)
        engine.insert_object(np.zeros(DIMS))
        engine.durability.close()
        space = make_vector_space(n=10, dims=DIMS, seed=1)
        fresh = open_engine(space)
        with pytest.raises(RecoveryError, match="already contains"):
            enable_durability(fresh, str(tmp_path / "state"))

    def test_open_engine_rejects_space_plus_recover_from(self, tmp_path):
        space = make_vector_space(n=10, dims=DIMS, seed=1)
        with pytest.raises(ValueError, match="not both"):
            open_engine(space, recover_from=str(tmp_path / "state"))

    def test_open_engine_rejects_recover_plus_durability(self, tmp_path):
        with pytest.raises(ValueError, match="do not pass durability"):
            open_engine(
                recover_from=str(tmp_path / "a"),
                durability=str(tmp_path / "b"),
            )

    def test_open_engine_requires_space_or_recover_from(self):
        with pytest.raises(TypeError, match="MetricSpace is required"):
            open_engine()

    def test_recover_from_empty_directory_is_a_typed_error(self, tmp_path):
        with pytest.raises(RecoveryError, match="no checkpoint"):
            recover_engine(str(tmp_path / "void"))

    def test_corrupt_checkpoint_is_a_typed_error(self, tmp_path):
        engine = durable_engine(tmp_path)
        engine.durability.close()
        path = tmp_path / "state" / "checkpoint.bin"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(RecoveryError, match="checksum"):
            recover_engine(str(tmp_path / "state"))

    def test_checkpoint_inside_a_transaction_is_refused(self, tmp_path):
        engine = durable_engine(tmp_path)
        with engine.durability.transaction():
            with pytest.raises(RecoveryError, match="inside a transaction"):
                engine.checkpoint()

    def test_volatile_engine_has_no_checkpoint(self):
        space = make_vector_space(n=10, dims=DIMS, seed=1)
        engine = open_engine(space)
        with pytest.raises(RuntimeError, match="durability"):
            engine.checkpoint()


class TestDurabilityGauges:
    """WAL size / checkpoint age / replay gauges (feeds the health report)."""

    def test_wal_bytes_grow_and_snap_back_on_checkpoint(self, tmp_path):
        engine = durable_engine(tmp_path)
        controller = engine.durability
        baseline = controller.gauges()["wal_bytes"]
        apply_ops(engine, ops=6)
        grown = controller.gauges()["wal_bytes"]
        assert grown > baseline
        controller.checkpoint(engine)
        truncated = controller.gauges()["wal_bytes"]
        assert truncated < grown

    def test_checkpoint_age_uses_injectable_clock(self, tmp_path):
        from repro.recovery.controller import DurabilityController

        clock = {"t": 100.0}
        controller = DurabilityController(
            str(tmp_path / "state2"), clock=lambda: clock["t"]
        )
        space = make_vector_space(n=20, dims=DIMS, seed=3)
        engine = open_engine(space, seed=3)
        controller.bind(engine)
        controller.checkpoint(engine)
        clock["t"] = 142.0
        gauges = controller.gauges()
        assert gauges["seconds_since_checkpoint"] == pytest.approx(42.0)
        controller.close()

    def test_replayed_commits_surface_after_recovery(self, tmp_path):
        engine = durable_engine(tmp_path)
        apply_ops(engine, ops=5)
        engine.durability.close()
        recovered = open_engine(recover_from=str(tmp_path / "state"))
        gauges = recovered.durability.gauges()
        assert gauges["replayed_commits"] == (
            recovered.last_recovery.replayed_commits
        )
        assert gauges["replayed_commits"] > 0
        # inherited checkpoint: age falls back to the file's mtime
        assert gauges["seconds_since_checkpoint"] is not None
        recovered.durability.close()

    def test_gauges_ride_in_snapshot(self, tmp_path):
        engine = durable_engine(tmp_path)
        snap = engine.durability.snapshot()
        assert set(snap["gauges"]) == {
            "wal_bytes",
            "seconds_since_checkpoint",
            "checkpoints",
            "replayed_commits",
        }
        assert snap["wal"]["size_bytes"] >= 0
