"""Comparator/gate tests (repro.obs.perf.compare).

The acceptance bar from the issue: an injected 2x wall-time slowdown
and a +1 distance-computation delta are both flagged, while identical
runs pass the gate 3/3 times — the gate must be sensitive to real
regressions and immune to its own repetition.
"""

from __future__ import annotations

import copy

import pytest

from repro.obs.perf.compare import (
    CompareOptions,
    compare_runs,
    mad,
    median,
)


def make_run(
    wall=(0.010, 0.011, 0.010),
    dists=1234,
    faults=56,
    bench_id="UNI/pba2/m=5",
    sha="abc123",
):
    return {
        "schema": "repro-bench-run/1",
        "suite": "core",
        "profile": "smoke",
        "created": 1.0,
        "env": {"git_sha": sha, "python": "3.12.0"},
        "benchmarks": [
            {
                "id": bench_id,
                "wall_seconds": list(wall),
                "counters": {
                    "distance_computations": dists,
                    "page_faults": faults,
                },
                "metrics": {"cpu_seconds": wall[0]},
            }
        ],
    }


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_is_robust_to_one_outlier(self):
        assert mad([1.0, 1.0, 1.0, 100.0]) == 0.0


class TestWallGate:
    def test_identical_runs_pass_three_consecutive_times(self):
        baseline = make_run()
        for _ in range(3):
            report = compare_runs(baseline, copy.deepcopy(baseline))
            assert report.ok, [f.message for f in report.failures]

    def test_injected_2x_slowdown_is_flagged(self):
        baseline = make_run(wall=(0.010, 0.011, 0.010))
        slow = make_run(wall=(0.020, 0.022, 0.020))
        report = compare_runs(baseline, slow)
        assert not report.ok
        (finding,) = report.failures
        assert finding.kind == "wall"
        assert "2.0" in finding.message

    def test_jitter_within_threshold_passes(self):
        baseline = make_run(wall=(0.010, 0.011, 0.010))
        jittery = make_run(wall=(0.011, 0.012, 0.011))  # ~10% slower
        assert compare_runs(baseline, jittery).ok

    def test_submillisecond_ratio_blowup_is_noise(self):
        # 3x ratio, but the absolute delta is far below the wall
        # floor: timer jitter, not a regression.
        baseline = make_run(wall=(0.0001, 0.0001, 0.0001))
        current = make_run(wall=(0.0003, 0.0003, 0.0003))
        assert compare_runs(baseline, current).ok

    def test_counters_only_ignores_wall(self):
        baseline = make_run(wall=(0.010,))
        slow = make_run(wall=(10.0,))
        options = CompareOptions(check_wall=False)
        assert compare_runs(baseline, slow, options).ok

    def test_advisory_mode_demotes_wall_to_warning(self):
        # the gate CLI's default: slowdown is reported but non-fatal
        # (shared machines shift load 1.5-2x between runs); counters
        # stay enforced.
        baseline = make_run(wall=(0.010, 0.011, 0.010))
        slow = make_run(wall=(0.020, 0.022, 0.020))
        options = CompareOptions(wall_advisory=True)
        report = compare_runs(baseline, slow, options)
        assert report.ok
        (finding,) = report.findings
        assert finding.kind == "wall" and finding.severity == "warn"
        assert "[WARN]" in report.render()
        bad = make_run(wall=(0.020, 0.022, 0.020), dists=9999)
        assert not compare_runs(baseline, bad, options).ok

    def test_large_improvement_is_informational(self):
        baseline = make_run(wall=(0.020, 0.022, 0.020))
        fast = make_run(wall=(0.010, 0.011, 0.010))
        report = compare_runs(baseline, fast)
        assert report.ok
        assert any(
            f.severity == "info" and f.kind == "wall"
            for f in report.findings
        )


class TestCounterGate:
    def test_plus_one_distance_computation_is_flagged(self):
        baseline = make_run(dists=1234)
        current = make_run(dists=1235)
        report = compare_runs(baseline, current)
        assert not report.ok
        (finding,) = report.failures
        assert finding.kind == "counter"
        assert finding.metric == "distance_computations"
        assert "+1" in finding.message

    def test_counter_decrease_also_fails_with_rebaseline_hint(self):
        baseline = make_run(faults=56)
        current = make_run(faults=55)
        report = compare_runs(baseline, current)
        assert not report.ok
        (finding,) = report.failures
        assert "improvement" in finding.message
        assert "rebaseline" in finding.message

    def test_determinism_loss_fails(self):
        baseline = make_run()
        current = make_run()
        bench = current["benchmarks"][0]
        del bench["counters"]["distance_computations"]
        bench["nondeterministic_counters"] = ["distance_computations"]
        report = compare_runs(baseline, current)
        assert not report.ok
        assert report.failures[0].kind == "determinism"

    def test_disappeared_counter_fails(self):
        baseline = make_run()
        current = make_run()
        del current["benchmarks"][0]["counters"]["page_faults"]
        report = compare_runs(baseline, current)
        assert not report.ok
        assert "disappeared" in report.failures[0].message


class TestCoverage:
    def test_missing_benchmark_fails(self):
        baseline = make_run()
        current = make_run(bench_id="UNI/pba2/m=2")
        report = compare_runs(baseline, current)
        kinds = {(f.kind, f.severity) for f in report.findings}
        assert ("coverage", "fail") in kinds  # the missing one
        assert ("coverage", "info") in kinds  # the new one

    def test_render_mentions_verdict_and_shas(self):
        baseline = make_run(sha="deadbeef00")
        report = compare_runs(baseline, make_run(dists=9999))
        text = report.render()
        assert "gate: FAIL" in text
        assert "deadbeef00" in text
        report_ok = compare_runs(baseline, copy.deepcopy(baseline))
        assert "gate: PASS" in report_ok.render()
